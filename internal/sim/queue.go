package sim

import "fmt"

// The engine's pending-event store is pluggable. The binary heap in
// engine.go is the default and is *not* driven through this interface —
// the hot path calls its concrete methods directly, so the common case
// pays no interface dispatch — but every backend, heap included,
// implements the same contract:
//
//   - push enqueues an event keyed (at, seq). Keys are unique: the engine
//     never enqueues two events with equal at and seq.
//   - popMin dequeues and returns the strictly smallest (at, seq) event.
//     The caller guarantees the queue is non-empty. FIFO among
//     same-instant events falls out of the seq tie-break.
//   - remove dequeues an event that is known to be queued (cancellation).
//   - update moves a queued event to a new (at, seq) key in place — the
//     dynamic "reschedule" operation rate-based pacing leans on. On the
//     heap it is a single sift (decrease/increase-key); on the bucket
//     backends it is an unlink plus a re-placement. It must be equivalent
//     to remove+push with the new key.
//   - peek returns the event popMin would return, or nil when empty, and
//     must not mutate observable state (internal caches may refresh).
//   - len returns the number of queued events.
//
// Every backend marks queued events with ev.index >= 0 (the value is
// backend-private: a heap position or a bucket number) and resets
// ev.index to -1 when the event leaves the queue; Event.Pending relies on
// that contract uniformly.
type EventQueue interface {
	push(ev *event)
	popMin() *event
	remove(ev *event)
	update(ev *event, at Time, seq uint64)
	peek() *event
	len() int
}

// The heap honors the same contract even though the engine never calls it
// through the interface.
var _ EventQueue = (*eventQueue)(nil)
var _ EventQueue = (*wheelQueue)(nil)
var _ EventQueue = (*hierQueue)(nil)
var _ EventQueue = (*ffsQueue)(nil)

// QueueKind selects the engine's event-queue backend.
type QueueKind uint8

const (
	// QueueHeap is the default: the concrete binary min-heap, 0 allocs
	// and no interface dispatch on the hot path. O(log n) push/pop, and
	// update is a single sift.
	QueueHeap QueueKind = iota
	// QueueWheel is a hashed timing wheel over ~1 µs buckets (Varghese &
	// Lauck scheme 6, as the facility's wheel): O(1) push/remove/update,
	// but an exact-order popMin must rescan for the minimum after every
	// pop, so it pays O(slots + n) per fire.
	QueueWheel
	// QueueHier is a four-level hierarchical wheel (scheme 7): O(1)
	// push/remove/update with far-deadline events parked on coarser
	// levels, and the same exact-order popMin rescan cost.
	QueueHier
	// QueueFFS is an Eiffel-style FFS-bitmap bucket queue: a find-first-
	// set over a two-level bitmap locates the earliest non-empty ~1 µs
	// bucket in O(1), so push/remove/update/popMin are all O(1) plus a
	// short same-bucket scan.
	QueueFFS
)

// queueKindNames orders the stable names; index = QueueKind.
var queueKindNames = [...]string{"heap", "wheel", "hier", "ffs"}

// String returns the stable lowercase name ("heap", "wheel", "hier",
// "ffs") used by stbench -queue and the ablation tables.
func (k QueueKind) String() string {
	if int(k) < len(queueKindNames) {
		return queueKindNames[k]
	}
	return fmt.Sprintf("QueueKind(%d)", uint8(k))
}

// ParseQueueKind maps a stable name back to its QueueKind.
func ParseQueueKind(s string) (QueueKind, error) {
	for i, n := range queueKindNames {
		if s == n {
			return QueueKind(i), nil
		}
	}
	return 0, fmt.Errorf("sim: unknown queue kind %q (want heap, wheel, hier or ffs)", s)
}

// QueueKinds returns every backend in presentation order, heap first —
// the sweep order of the differential tests and the ablation-queue table.
func QueueKinds() []QueueKind {
	return []QueueKind{QueueHeap, QueueWheel, QueueHier, QueueFFS}
}

// newQueueBackend builds the alternative backend for kind, or nil for the
// default heap (which lives inline in the Engine).
func newQueueBackend(kind QueueKind) EventQueue {
	switch kind {
	case QueueHeap:
		return nil
	case QueueWheel:
		return newWheelQueue()
	case QueueHier:
		return newHierQueue()
	case QueueFFS:
		return newFFSQueue()
	}
	panic(fmt.Sprintf("sim: unknown queue kind %d", kind))
}

// evList is the intrusive doubly-linked list threading events through the
// bucket backends via the next/prev fields events already carry. Links
// are cleared on unlink, so a recycled event never aliases a list.
type evList struct{ head *event }

func (l *evList) pushFront(ev *event) {
	ev.prev = nil
	ev.next = l.head
	if l.head != nil {
		l.head.prev = ev
	}
	l.head = ev
}

func (l *evList) unlink(ev *event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	ev.next, ev.prev = nil, nil
}

// minOf scans the list for its smallest (at, seq) entry, folding into a
// running minimum (cur may be nil).
func (l *evList) minOf(cur *event) *event {
	for t := l.head; t != nil; t = t.next {
		if cur == nil || before(t, cur) {
			cur = t
		}
	}
	return cur
}
