// Package sim provides a deterministic discrete-event simulation engine.
//
// All higher-level subsystems in this repository (the simulated kernel, the
// network stack, TCP, the web-server workload models) run on top of a single
// sim.Engine. Simulated time is a nanosecond counter that advances only when
// events fire, so microsecond-scale phenomena — the paper's subject — are
// exact and runs are perfectly reproducible for a given seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// run. It doubles as a duration type: differences and sums of Time values
// are meaningful, mirroring how the paper treats clock ticks.
type Time int64

// Convenient units, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Infinity is a time later than any event a simulation will schedule.
const Infinity Time = 1<<63 - 1

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts t to a time.Duration (both are nanosecond counts).
func (t Time) Std() time.Duration { return time.Duration(t) }

// FromStd converts a time.Duration to a sim.Time.
func FromStd(d time.Duration) Time { return Time(d) }

// Micros returns a Time of us microseconds. Fractional microsecond inputs
// are rounded to the nearest nanosecond.
func Micros(us float64) Time { return Time(us*float64(Microsecond) + 0.5) }

// Millis returns a Time of ms milliseconds.
func Millis(ms float64) Time { return Time(ms*float64(Millisecond) + 0.5) }

// Seconds returns a Time of s seconds.
func Seconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// String formats t with an adaptive unit, e.g. "12.5us" or "3.2ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}
