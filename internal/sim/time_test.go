package sim

import (
	"testing"
	"time"
)

func TestUnitConstants(t *testing.T) {
	if Microsecond != 1000 || Millisecond != 1_000_000 || Second != 1_000_000_000 {
		t.Fatal("unit constants are wrong")
	}
}

func TestConversions(t *testing.T) {
	cases := []struct {
		in   Time
		us   float64
		ms   float64
		secs float64
	}{
		{0, 0, 0, 0},
		{1500, 1.5, 0.0015, 0.0000015},
		{2 * Second, 2e6, 2000, 2},
	}
	for _, c := range cases {
		if got := c.in.Micros(); got != c.us {
			t.Errorf("%d.Micros() = %v, want %v", int64(c.in), got, c.us)
		}
		if got := c.in.Millis(); got != c.ms {
			t.Errorf("%d.Millis() = %v, want %v", int64(c.in), got, c.ms)
		}
		if got := c.in.Seconds(); got != c.secs {
			t.Errorf("%d.Seconds() = %v, want %v", int64(c.in), got, c.secs)
		}
	}
}

func TestConstructorsRound(t *testing.T) {
	if Micros(1.5) != 1500 {
		t.Errorf("Micros(1.5) = %v", Micros(1.5))
	}
	if Micros(0.0004) != 0 {
		t.Errorf("Micros(0.0004) = %v, want 0", Micros(0.0004))
	}
	if Millis(2) != 2*Millisecond {
		t.Errorf("Millis(2) = %v", Millis(2))
	}
	if Seconds(0.25) != 250*Millisecond {
		t.Errorf("Seconds(0.25) = %v", Seconds(0.25))
	}
}

func TestStdRoundTrip(t *testing.T) {
	d := 123456 * time.Microsecond
	if FromStd(d).Std() != d {
		t.Fatalf("round trip failed: %v", FromStd(d).Std())
	}
}

func TestStringAdaptiveUnits(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{12500, "12.5us"},
		{3200 * Microsecond, "3.2ms"},
		{2 * Second, "2s"},
		{-12500, "-12.5us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}
