package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it; a fired or canceled Event is inert.
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among events scheduled for the same instant
	fn     func()
	index  int // position in the heap, -1 when not queued
	fired  bool
	label  string
	engine *Engine
}

// At reports the simulated time the event is (or was) scheduled for.
func (ev *Event) At() Time { return ev.at }

// Pending reports whether the event is still queued.
func (ev *Event) Pending() bool { return ev != nil && ev.index >= 0 }

// Cancel removes the event from the queue. Canceling a fired, canceled, or
// nil event is a no-op, so callers need not track event lifetimes precisely.
func (ev *Event) Cancel() {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&ev.engine.queue, ev.index)
}

// Label returns the debug label attached at scheduling time (may be empty).
func (ev *Event) Label() string { return ev.label }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the simulated kernel is a uniprocessor, as in the paper's
// testbed, so no locking is needed or wanted.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *RNG
	stopped bool

	// Fired counts events executed since construction, for tests and
	// progress reporting.
	Fired uint64
}

// NewEngine returns an engine at time zero whose RNG is seeded with seed.
// The same seed always produces the same run.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *RNG { return e.rng }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modeling bug, and silently clamping would corrupt
// measured distributions.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.AtLabeled(t, "", fn)
}

// AtLabeled is At with a debug label attached to the event.
func (e *Engine) AtLabeled(t Time, label string, fn func()) *Event {
	if fn == nil {
		panic("sim: schedule of nil func")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v (label %q)", t, e.now, label))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, label: label, engine: e}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.AtLabeled(e.now+d, "", fn)
}

// AfterLabeled is After with a debug label.
func (e *Engine) AfterLabeled(d Time, label string, fn func()) *Event {
	return e.AtLabeled(e.now+d, label, fn)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if the queue is empty or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.at < e.now {
		panic("sim: time went backwards") // unreachable; guards heap bugs
	}
	e.now = ev.at
	ev.fired = true
	e.Fired++
	ev.fn()
	return true
}

// RunUntil fires events in order until the next event would be after t (or
// the queue drains), then advances the clock to exactly t. This is the main
// driver for fixed-duration experiments.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// RunFor runs the simulation for d nanoseconds of simulated time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Stop halts the run loop after the current event returns. Subsequent Step
// calls return false until the engine is discarded; Stop is terminal.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
