package sim

import "fmt"

// event is the engine-owned representation of a scheduled callback. Events
// are pooled: when one fires or is canceled it is recycled onto the
// engine's free list, so steady-state scheduling allocates nothing. The
// gen counter makes recycling safe: every public Event handle snapshots
// the generation at scheduling time, and a handle whose generation no
// longer matches is inert.
type event struct {
	at    Time
	seq   uint64 // tie-break key; see At (FIFO band) and AtArrival (arrival band)
	gen   uint64 // bumped on every recycle; stale handles mismatch
	fn    func()
	label string
	index int32 // >= 0 while queued (backend-private slot), -1 when not
	eng   *Engine

	// next/prev thread the event through a bucket backend's intrusive slot
	// list (see evList). The heap leaves them nil.
	next, prev *event
}

// Event is a handle to a scheduled callback, returned by the scheduling
// methods so callers can cancel it. It is a small value type; the zero
// Event is valid and permanently inert.
//
// Lifecycle semantics (explicit, and relied on throughout the kernel and
// TCP layers):
//
//   - A pending event has Pending() == true; Cancel removes it from the
//     queue and returns true.
//   - Once the event fires or is canceled it becomes inert: Pending
//     reports false, Cancel is a no-op returning false (double-Cancel and
//     Cancel-after-fire are therefore always safe), and the handler
//     closure is released immediately so it cannot pin memory.
//   - The underlying storage is recycled for future events; the
//     generation check guarantees a retained handle can never observe or
//     disturb the event that reused its slot.
type Event struct {
	e   *event
	gen uint64
	at  Time
}

// At reports the simulated time the event is (or was) scheduled for.
func (ev Event) At() Time { return ev.at }

// Pending reports whether the event is still queued.
func (ev Event) Pending() bool {
	return ev.e != nil && ev.e.gen == ev.gen && ev.e.index >= 0
}

// Cancel removes the event from the queue, reporting whether it was still
// pending. Canceling a fired, canceled, or zero Event is a no-op, so
// callers need not track event lifetimes precisely.
func (ev Event) Cancel() bool {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.index < 0 {
		return false
	}
	eng := e.eng
	if n := eng.qlen(); n > eng.maxPending {
		eng.maxPending = n // depth high-water mark, caught pre-shrink
	}
	if eng.alt != nil {
		eng.alt.remove(e)
	} else {
		eng.queue.remove(e)
	}
	eng.release(e)
	return true
}

// Reschedule moves a still-pending event to absolute time t in place — the
// queue backend relocates the existing entry (a single sift on the heap, a
// bucket migration on the wheels) instead of paying a cancel plus a fresh
// insert. It reports whether the event was pending; rescheduling a fired,
// canceled, or zero Event is an inert no-op, mirroring Cancel.
//
// The event draws a fresh FIFO sequence number, exactly as cancel+insert
// would, so same-instant ordering against other events is identical to the
// two-step form — rate-based pacing can switch to Reschedule without
// perturbing a single tie-break. Rescheduling into the past panics, like
// At; arrival-band events carry externally owned keys and cannot be
// rescheduled.
//
// The receiver is a pointer so the handle's At() snapshot tracks the move;
// other outstanding copies of the handle remain valid for Cancel/Pending
// but report the stale time.
func (ev *Event) Reschedule(t Time) bool {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.index < 0 {
		return false
	}
	eng := e.eng
	if t < eng.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v (label %q)", t, eng.now, e.label))
	}
	if e.seq&arrivalBand != 0 {
		panic("sim: reschedule of an arrival-band event")
	}
	eng.seq++
	if eng.alt != nil {
		eng.alt.update(e, t, eng.seq)
	} else {
		eng.queue.update(e, t, eng.seq)
	}
	ev.at = t
	return true
}

// RescheduleAfter is Reschedule relative to the engine's current time.
func (ev *Event) RescheduleAfter(d Time) bool {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.index < 0 {
		return false
	}
	return ev.Reschedule(e.eng.now + d)
}

// Label returns the debug label attached at scheduling time. It returns ""
// once the event has fired or been canceled (the label is released with
// the rest of the event's storage).
func (ev Event) Label() string {
	if ev.e != nil && ev.e.gen == ev.gen {
		return ev.e.label
	}
	return ""
}

// eventQueue is a binary min-heap ordered by (at, seq). It is a concrete
// implementation — not container/heap — so the hot path pays no interface
// conversions or indirect Less/Swap calls, and sift operations move the
// displaced element in a hole rather than swapping pairwise.
type eventQueue []*event

// before reports whether a orders strictly before b.
func before(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (q *eventQueue) push(ev *event) {
	*q = append(*q, ev)
	q.siftUp(len(*q) - 1)
}

// popMin removes and returns the earliest event. The caller must know the
// queue is non-empty.
func (q *eventQueue) popMin() *event {
	h := *q
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	*q = h[:n]
	if n > 0 {
		h[0] = last
		last.index = 0
		q.siftDown(0)
	}
	root.index = -1
	return root
}

// remove deletes a queued event (EventQueue shape; the position comes from
// the index stamp).
func (q *eventQueue) remove(ev *event) { q.removeAt(int(ev.index)) }

// removeAt deletes the event at heap position i.
func (q *eventQueue) removeAt(i int) {
	h := *q
	n := len(h) - 1
	ev := h[i]
	last := h[n]
	h[n] = nil
	*q = h[:n]
	if i < n {
		h[i] = last
		last.index = int32(i)
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	ev.index = -1
}

// update rekeys a queued event in place: a decrease-key or increase-key
// restoring heap order with a single sift from the event's position, the
// O(log n) dynamic-update operation cancel+insert pays twice for.
func (q *eventQueue) update(ev *event, at Time, seq uint64) {
	ev.at, ev.seq = at, seq
	i := int(ev.index)
	if !q.siftDown(i) {
		q.siftUp(i)
	}
}

func (q *eventQueue) peek() *event {
	if len(*q) == 0 {
		return nil
	}
	return (*q)[0]
}

func (q *eventQueue) len() int { return len(*q) }

func (q eventQueue) siftUp(i int) {
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !before(ev, p) {
			break
		}
		q[i] = p
		p.index = int32(i)
		i = parent
	}
	q[i] = ev
	ev.index = int32(i)
}

// siftDown restores heap order below i, reporting whether i's element moved.
func (q eventQueue) siftDown(i int) bool {
	n := len(q)
	ev := q[i]
	i0 := i
	for {
		l := 2*i + 1
		if l >= n || l < 0 { // l < 0 after int overflow
			break
		}
		m := l
		if r := l + 1; r < n && before(q[r], q[l]) {
			m = r
		}
		c := q[m]
		if !before(c, ev) {
			break
		}
		q[i] = c
		c.index = int32(i)
		i = m
	}
	q[i] = ev
	ev.index = int32(i)
	return i > i0
}

// poolChunk is the allocation granularity of the event pool: events are
// carved out of arrays of this size, so even a cold engine performs one
// allocation per poolChunk events rather than one per event.
const poolChunk = 64

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the simulated kernel is a uniprocessor, as in the paper's
// testbed, so no locking is needed or wanted. Distinct Engine instances
// share no state, so independent simulations may run on concurrent
// goroutines (the parallel experiment runner relies on this).
type Engine struct {
	now   Time
	queue eventQueue
	// alt, when non-nil, replaces the inline heap as the pending-event
	// store (NewEngineWithQueue). Every queue touch branches on alt == nil
	// rather than calling through an interface value, so the default heap
	// engine pays one predictable branch — not a dynamic dispatch — on the
	// hot path. The heap also implements EventQueue, but is never driven
	// through it.
	alt   EventQueue
	qkind QueueKind
	// driver, when non-nil, slaves the run loop to an external clock
	// (SetClockDriver; see ClockDriver in clock.go). The sim-mode engine
	// never sets it, and the run loops branch on it once per *call* — not
	// per event — so the default tight loop is untouched: same
	// instructions, same order, same zero allocations.
	driver ClockDriver
	seq    uint64
	// maxPending is the heap-depth high-water mark observed at decrease
	// points. The true maximum depth is always attained immediately before
	// some pop/cancel (or is the current depth), so checking only there —
	// plus the live depth in MaxPending — keeps the schedule hot path free
	// of any telemetry cost.
	maxPending int
	rng        *RNG
	stopped    bool

	// free is the recycled-event list; chunk is the tail of the current
	// allocation block being carved into fresh events.
	free  []*event
	chunk []event

	// Fired counts events executed since construction, for tests and
	// progress reporting.
	Fired uint64
}

// NewEngine returns an engine at time zero whose RNG is seeded with seed.
// The same seed always produces the same run.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// NewEngineWithQueue is NewEngine with an explicit event-queue backend.
// QueueHeap yields an engine identical to NewEngine's; the other kinds
// swap in a bucket-structured store with the same observable semantics —
// the differential harness in queue_diff_test.go holds them to identical
// fire order — but different cost profiles (see QueueKind).
func NewEngineWithQueue(seed uint64, kind QueueKind) *Engine {
	return &Engine{rng: NewRNG(seed), alt: newQueueBackend(kind), qkind: kind}
}

// NewEngineWithClock is NewEngine with an explicit clock driver kind.
// ClockSim yields an engine identical to NewEngine's (no driver at all);
// ClockRealTime installs a fresh RealTimeClock on the real wall clock.
// Use SetClockDriver directly to install a configured driver (a fake
// clock, or a RealTimeClock shared with socket goroutines).
func NewEngineWithClock(seed uint64, kind ClockKind) *Engine {
	e := NewEngine(seed)
	e.SetClockDriver(NewClockDriver(kind))
	return e
}

// SetClockDriver installs (or, with nil, removes) the engine's clock
// driver. Must be called before the engine runs; swapping drivers mid-run
// would tear the driver's time anchor away from the virtual clock.
func (e *Engine) SetClockDriver(d ClockDriver) { e.driver = d }

// ClockDriver returns the installed driver (nil in sim mode).
func (e *Engine) ClockDriver() ClockDriver { return e.driver }

// Clock reports which clock the engine runs on: ClockSim when no driver
// is installed, ClockRealTime otherwise (every non-nil driver slaves the
// run loop to some external clock; the stock one is the wall clock).
func (e *Engine) Clock() ClockKind {
	if e.driver == nil {
		return ClockSim
	}
	return ClockRealTime
}

// Queue reports which event-queue backend the engine runs on.
func (e *Engine) Queue() QueueKind { return e.qkind }

// qlen is the current pending-event count, whichever store holds them.
func (e *Engine) qlen() int {
	if e.alt != nil {
		return e.alt.len()
	}
	return len(e.queue)
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *RNG { return e.rng }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.qlen() }

// EarliestPending returns the time of the earliest queued event, or
// (0, false) when the queue is empty. It reads the queue head through the
// same peek the run loop uses (EventQueue.peek on alternate backends, the
// heap root inline), mutating nothing — conservative sync's lookahead
// mining asks every round, on every shard, so the probe must stay O(1)-ish
// and side-effect free.
func (e *Engine) EarliestPending() (Time, bool) {
	var head *event
	if e.alt != nil {
		head = e.alt.peek()
	} else if len(e.queue) > 0 {
		head = e.queue[0]
	}
	if head == nil {
		return 0, false
	}
	return head.at, true
}

// FreeListLen returns the number of recycled events awaiting reuse (for
// tests and introspection).
func (e *Engine) FreeListLen() int { return len(e.free) }

// MaxPending returns the heap-depth high-water mark — the largest number
// of simultaneously queued events the engine has ever held. The standing
// depth counts: maxPending itself is only refreshed when the queue
// shrinks.
func (e *Engine) MaxPending() int {
	if n := e.qlen(); n > e.maxPending {
		return n
	}
	return e.maxPending
}

// alloc returns a clean event, recycling from the free list when possible.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.chunk) == 0 {
		e.chunk = make([]event, poolChunk)
	}
	ev := &e.chunk[0]
	e.chunk = e.chunk[1:]
	ev.eng = e
	ev.index = -1
	return ev
}

// release recycles a fired or canceled event. It clears the handler and
// label so no caller-owned memory is pinned by the pool, and bumps the
// generation so outstanding handles become inert.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.label = ""
	ev.gen++
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modeling bug, and silently clamping would corrupt
// measured distributions.
func (e *Engine) At(t Time, fn func()) Event {
	return e.AtLabeled(t, "", fn)
}

// AtLabeled is At with a debug label attached to the event.
func (e *Engine) AtLabeled(t Time, label string, fn func()) Event {
	if fn == nil {
		panic("sim: schedule of nil func")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v (label %q)", t, e.now, label))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.label = label
	if e.alt != nil {
		e.alt.push(ev)
	} else {
		e.queue.push(ev)
	}
	return Event{e: ev, gen: ev.gen, at: t}
}

// Arrival-band keys. Ordinarily scheduled events draw seq from the
// engine's counter, which starts at zero and can never plausibly reach
// the band bit, so every ordinary event orders before every arrival at
// the same instant; arrivals order among themselves by (conduit, seq).
const (
	arrivalBand         = uint64(1) << 63
	arrivalConduitShift = 28
	arrivalSeqMax       = uint64(1)<<arrivalConduitShift - 1
)

// AtArrival schedules fn in the arrival band: it runs at time t after
// every ordinarily scheduled event at t (including ones scheduled later,
// even during t's own processing), ordered among arrivals by (conduit,
// seq). The key is caller-supplied and engine-independent — that is the
// point: callers that assign conduit ids during deterministic assembly
// and draw seq from a per-conduit send counter get the same same-instant
// arrival order however the simulation is partitioned across engines,
// which is the sharded executor's determinism contract. (conduit, seq)
// pairs must be unique per pending instant; conduit must be non-negative
// and seq at most 2^28-1 (plenty for any run, and checked).
func (e *Engine) AtArrival(t Time, conduit int32, seq uint64, label string, fn func()) Event {
	if fn == nil {
		panic("sim: schedule of nil func")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: arrival at %v before now %v (conduit %d)", t, e.now, conduit))
	}
	if conduit < 0 {
		panic(fmt.Sprintf("sim: negative arrival conduit %d", conduit))
	}
	if seq > arrivalSeqMax {
		panic(fmt.Sprintf("sim: arrival seq %d overflows the conduit band", seq))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = arrivalBand | uint64(conduit)<<arrivalConduitShift | seq
	ev.fn = fn
	ev.label = label
	if e.alt != nil {
		e.alt.push(ev)
	} else {
		e.queue.push(ev)
	}
	return Event{e: ev, gen: ev.gen, at: t}
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) Event {
	return e.AtLabeled(e.now+d, "", fn)
}

// AfterLabeled is After with a debug label.
func (e *Engine) AfterLabeled(d Time, label string, fn func()) Event {
	return e.AtLabeled(e.now+d, label, fn)
}

// fire pops the earliest event, advances the clock, recycles the event's
// storage, and runs its handler. The caller must know the queue is
// non-empty and the engine not stopped.
func (e *Engine) fire() {
	if n := e.qlen(); n > e.maxPending {
		e.maxPending = n // depth high-water mark, caught pre-shrink
	}
	var ev *event
	if e.alt != nil {
		ev = e.alt.popMin()
	} else {
		ev = e.queue.popMin()
	}
	if ev.at < e.now {
		panic("sim: time went backwards") // unreachable; guards heap bugs
	}
	e.now = ev.at
	fn := ev.fn
	e.release(ev) // before fn: handlers often schedule, reusing this slot
	e.Fired++
	fn()
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if the queue is empty or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped || e.qlen() == 0 {
		return false
	}
	e.fire()
	return true
}

// RunUntil fires events in order until the next event would be after t (or
// the queue drains), then advances the clock to exactly t. This is the main
// driver for fixed-duration experiments. The loop is the simulator's
// hottest path: it re-checks only what a handler can change (stop state,
// queue head) and pays no per-event function-call indirection beyond the
// handler itself.
//
// Edge semantics — identical on every queue backend and clock driver, and
// pinned by runedge_test.go:
//
//   - RunUntil(e.Now()) — equivalently RunFor(0) — fires every event due
//     exactly now, including events a firing handler schedules at the
//     current instant, and leaves the clock unchanged.
//   - RunUntil(t) with t < e.Now() fires nothing and never moves the
//     clock backwards: the call is a no-op. (Pending events are always at
//     or after now, so the head check fails and the final clamp is
//     guarded by t > now.)
//   - If a handler calls Stop, the run ends with the clock at that
//     handler's time; the final advance to t is skipped.
func (e *Engine) RunUntil(t Time) {
	if e.driver != nil {
		e.runDriven(t, false)
		return
	}
	if e.alt == nil {
		// The default heap keeps the specialized tight loop: head peek is a
		// slice index, no calls beyond fire.
		for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= t {
			e.fire()
		}
	} else {
		for !e.stopped {
			head := e.alt.peek()
			if head == nil || head.at > t {
				break
			}
			e.fire()
		}
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// RunFor runs the simulation for d nanoseconds of simulated time.
// RunFor(0) is RunUntil(now): it drains everything due at the current
// instant and leaves the clock in place (see RunUntil's edge semantics).
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Run fires events until the queue is empty or Stop is called, leaving the
// clock at the last fired event (never beyond it). Under a clock driver
// each firing additionally waits for the external clock to authorize it;
// the run still ends the moment the queue drains — it does not linger
// waiting for injected work, so driven servers use bounded RunFor slices.
func (e *Engine) Run() {
	if e.driver != nil {
		e.runDriven(Infinity, true)
		return
	}
	for !e.stopped && e.qlen() > 0 {
		e.fire()
	}
}

// runDriven is the driven run loop behind RunUntil (drain=false: advance
// the clock to exactly t at the end) and Run (drain=true: stop when the
// queue empties, clock left at the last event). Per iteration it peeks the
// next due event, asks the driver to wait for its instant — or for t
// itself when nothing is due before the horizon — and either fires on
// authorization or runs the injected work the wait was interrupted with.
// Injected closures run with the clock advanced to their wall-mapped
// arrival (clamped into [now, target]), then the queue is re-evaluated:
// injection may have scheduled something earlier than the awaited event.
func (e *Engine) runDriven(t Time, drain bool) {
	d := e.driver
	d.Begin(e.now)
	for !e.stopped {
		var head *event
		if e.alt != nil {
			head = e.alt.peek()
		} else if len(e.queue) > 0 {
			head = e.queue[0]
		}
		if drain && head == nil {
			break
		}
		target := t
		due := false
		if head != nil && head.at <= t {
			target, due = head.at, true
		}
		adv, work := d.WaitUntil(target)
		// len(work)==0 — nil or an empty batch — means the wait completed;
		// only non-empty batches loop back, so a driver handing out empty
		// slices cannot spin the run loop without advancing it.
		if len(work) > 0 {
			if adv > target {
				adv = target
			}
			if adv > e.now {
				e.now = adv
			}
			for _, fn := range work {
				fn()
			}
			continue
		}
		if !due {
			break
		}
		e.fire()
	}
	if !drain && !e.stopped && t > e.now {
		e.now = t
	}
}

// Stop halts the run loop after the current event returns. Subsequent Step
// calls return false until the engine is discarded; Stop is terminal.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
