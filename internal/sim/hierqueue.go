package sim

// hierQueue is the hierarchical-timing-wheel EventQueue backend: four
// levels of 64 slots over ~1 µs base buckets, each level coarser by 64x,
// with deadlines beyond the top level parked on an overflow list — the
// Varghese & Lauck multi-level scheme the facility's Hierarchical wheel
// uses, applied to the engine's queue. A mix of microsecond soft-timer
// events and millisecond protocol timeouts never crowds one slot list.
//
// Unlike the classic wheel there is no cascade: placement is by absolute
// deadline prefix relative to the bucket cursor at push time, and because
// the exact-order popMin recrowns the minimum by scanning every slot
// anyway (the same O(slots + n) worst case as wheelQueue), events are
// found wherever they were placed. push, remove and update stay O(1).
type hierQueue struct {
	levels   [hqLevels][hqSlots]evList
	overflow evList
	cur      uint64 // bucket of the last popped event; placement origin
	n        int
	min      *event
	dirty    bool
}

const (
	hqShift    = 10 // 1024 ns base buckets
	hqBits     = 6  // 64 slots per level
	hqSlots    = 1 << hqBits
	hqLevels   = 4 // 64^4 buckets ≈ 17 s of 1 µs ticks
	hqOverflow = hqLevels * hqSlots
)

func newHierQueue() *hierQueue { return &hierQueue{} }

func hqBucket(at Time) uint64 { return uint64(at) >> hqShift }

// place links ev into the level/slot its deadline prefix selects, stamping
// the slot id into ev.index (hqOverflow for the overflow list).
func (q *hierQueue) place(ev *event) {
	b := hqBucket(ev.at)
	var delta uint64
	if b > q.cur {
		delta = b - q.cur
	}
	for l := 0; l < hqLevels; l++ {
		if delta < 1<<(hqBits*(l+1)) {
			idx := (b >> (hqBits * l)) & (hqSlots - 1)
			q.levels[l][idx].pushFront(ev)
			ev.index = int32(l*hqSlots) + int32(idx)
			return
		}
	}
	q.overflow.pushFront(ev)
	ev.index = hqOverflow
}

// listFor maps a stamped index back to its list.
func (q *hierQueue) listFor(index int32) *evList {
	if index == hqOverflow {
		return &q.overflow
	}
	return &q.levels[index>>hqBits][index&(hqSlots-1)]
}

func (q *hierQueue) len() int { return q.n }

func (q *hierQueue) push(ev *event) {
	q.place(ev)
	q.n++
	if !q.dirty && (q.min == nil || before(ev, q.min)) {
		q.min = ev
	}
}

func (q *hierQueue) remove(ev *event) {
	q.listFor(ev.index).unlink(ev)
	ev.index = -1
	q.n--
	if ev == q.min {
		q.dirty = true
	}
}

func (q *hierQueue) update(ev *event, at Time, seq uint64) {
	q.listFor(ev.index).unlink(ev)
	ev.at, ev.seq = at, seq
	q.place(ev)
	if ev == q.min {
		q.dirty = true
	} else if !q.dirty && before(ev, q.min) {
		q.min = ev
	}
}

func (q *hierQueue) peek() *event {
	if q.n == 0 {
		return nil
	}
	if q.dirty {
		q.recompute()
	}
	return q.min
}

func (q *hierQueue) popMin() *event {
	m := q.peek()
	q.listFor(m.index).unlink(m)
	m.index = -1
	q.n--
	q.dirty = true
	if b := hqBucket(m.at); b > q.cur {
		q.cur = b // placement origin advances with the pop order
	}
	return m
}

// recompute rescans every level and the overflow for the global minimum.
func (q *hierQueue) recompute() {
	var min *event
	for l := 0; l < hqLevels; l++ {
		for i := range q.levels[l] {
			min = q.levels[l][i].minOf(min)
		}
	}
	q.min = q.overflow.minOf(min)
	q.dirty = false
}
