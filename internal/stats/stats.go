// Package stats provides the summary statistics used throughout the paper's
// evaluation: full-sample summaries (mean, median, standard deviation, max,
// tail fractions), cumulative distribution functions for the trigger-interval
// figures, time-windowed medians for Figure 5, and online accumulators for
// high-volume measurement (2 million samples per workload in Section 5.3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample collects float64 observations and computes summary statistics.
// The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(vs []float64) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Values returns the underlying observations, sorted ascending. The returned
// slice is owned by the Sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return s.values
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// observations.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Percentile returns the p-th percentile (0–100) using nearest-rank
// interpolation. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return s.values[n-1]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

// FracAbove returns the fraction of observations strictly greater than x.
// Table 1 reports the fraction of trigger intervals above 100 and 150 µs.
func (s *Sample) FracAbove(x float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	// First index with value > x.
	idx := sort.Search(n, func(i int) bool { return s.values[i] > x })
	return float64(n-idx) / float64(n)
}

// CDFPoint is one (x, cumulative fraction) point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64 // fraction of samples <= X, in [0,1]
}

// CDF returns the empirical CDF evaluated at the given x values.
func (s *Sample) CDF(xs []float64) []CDFPoint {
	s.ensureSorted()
	n := len(s.values)
	out := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		idx := sort.Search(n, func(i int) bool { return s.values[i] > x })
		frac := 0.0
		if n > 0 {
			frac = float64(idx) / float64(n)
		}
		out = append(out, CDFPoint{X: x, Frac: frac})
	}
	return out
}

// Summary bundles the statistics Table 1 reports for each workload.
type Summary struct {
	N       int
	Max     float64
	Mean    float64
	Median  float64
	StdDev  float64
	Above1  float64 // fraction above threshold 1 (paper: 100 µs)
	Above2  float64 // fraction above threshold 2 (paper: 150 µs)
	Thresh1 float64
	Thresh2 float64
}

// Summarize computes a Summary with the given tail thresholds.
func (s *Sample) Summarize(thresh1, thresh2 float64) Summary {
	return Summary{
		N:       s.N(),
		Max:     s.Max(),
		Mean:    s.Mean(),
		Median:  s.Median(),
		StdDev:  s.StdDev(),
		Above1:  s.FracAbove(thresh1),
		Above2:  s.FracAbove(thresh2),
		Thresh1: thresh1,
		Thresh2: thresh2,
	}
}

// String renders the summary in the layout of the paper's Table 1 rows.
func (sm Summary) String() string {
	return fmt.Sprintf("max=%.0f mean=%.2f median=%.0f stddev=%.1f >%.0f=%.3g%% >%.0f=%.3g%%",
		sm.Max, sm.Mean, sm.Median, sm.StdDev,
		sm.Thresh1, sm.Above1*100, sm.Thresh2, sm.Above2*100)
}
