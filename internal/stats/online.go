package stats

import "math"

// Online accumulates count/mean/variance/min/max in O(1) memory using
// Welford's algorithm. The trigger-interval experiments record two million
// samples per workload; Online lets hot paths avoid retaining them all when
// only moments are needed.
type Online struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (o *Online) Add(v float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = v, v
	} else {
		if v < o.min {
			o.min = v
		}
		if v > o.max {
			o.max = v
		}
	}
	d := v - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (v - o.mean)
}

// N returns the observation count.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean, or 0 when empty.
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest observation, or 0 when empty.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 when empty.
func (o *Online) Max() float64 { return o.max }

// Variance returns the population variance, or 0 for n < 2.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Merge folds other into o (parallel-combine form of Welford).
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	mean := o.mean + d*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	min, max := o.min, o.max
	if other.min < min {
		min = other.min
	}
	if other.max > max {
		max = other.max
	}
	*o = Online{n: n, mean: mean, m2: m2, min: min, max: max}
}
