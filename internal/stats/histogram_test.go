package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramConstructorPanics(t *testing.T) {
	for _, c := range []struct {
		w float64
		n int
	}{{0, 10}, {-1, 10}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%d) did not panic", c.w, c.n)
				}
			}()
			NewHistogram(c.w, c.n)
		}()
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(1, 100)
	for _, v := range []float64{1.25, 2.5, 3.75} {
		h.Add(v)
	}
	if !approx(h.Mean(), 2.5, 1e-12) {
		t.Fatalf("Mean = %v, want 2.5 (mean must not be quantized)", h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 1000)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if math.Abs(med-500) > 2 {
		t.Fatalf("median = %v, want ~500", med)
	}
	if q := h.Quantile(0); q > 1 {
		t.Errorf("Q(0) = %v, want near 0", q)
	}
	if q := h.Quantile(1); math.Abs(q-1000) > 2 {
		t.Errorf("Q(1) = %v, want ~1000", q)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Add(5)
	if h.Quantile(-0.5) != h.Quantile(0) {
		t.Error("negative q should clamp")
	}
	if h.Quantile(1.5) != h.Quantile(1) {
		t.Error("q>1 should clamp")
	}
}

func TestHistogramOverflowAndNegatives(t *testing.T) {
	h := NewHistogram(10, 10) // covers [0,100)
	h.Add(-5)                 // clamps into first bucket
	h.Add(500)                // overflow
	h.Add(50)
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.FracAbove(100); !approx(got, 1.0/3, 1e-12) {
		t.Errorf("FracAbove(100) = %v, want 1/3", got)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Q(1) with overflow = %v, want upper bound 100", q)
	}
}

func TestHistogramFracAbove(t *testing.T) {
	h := NewHistogram(10, 20)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) * 2) // 0..198
	}
	got := h.FracAbove(100)
	// values 110..198 fall in buckets entirely above 100 => 45 of 100 samples
	if !approx(got, 0.45, 0.06) {
		t.Fatalf("FracAbove(100) = %v, want ~0.45", got)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(10, 10)
	for _, v := range []float64{5, 15, 25, 35} {
		h.Add(v)
	}
	pts := h.CDF(40)
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	if pts[0].Frac != 0.25 || pts[3].Frac != 1 {
		t.Fatalf("CDF = %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Frac < pts[i-1].Frac {
			t.Fatal("histogram CDF not monotone")
		}
	}
}

func TestHistogramASCII(t *testing.T) {
	h := NewHistogram(10, 5)
	h.Add(5)
	h.Add(5)
	h.Add(45)
	h.Add(500)
	out := h.ASCII(0)
	if !strings.Contains(out, "overflow: 1") {
		t.Errorf("ASCII missing overflow line:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("ASCII missing bars:\n%s", out)
	}
}

// Property: the histogram quantile lands within one bucket width of the
// nearest-rank order statistic for in-range data. (Interpolated percentiles
// can legitimately fall between sparse samples, so nearest-rank is the right
// reference here.)
func TestPropertyHistogramQuantileAccuracy(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(10, 200) // covers [0, 2000); uint16 values capped below
		var s Sample
		for _, r := range raw {
			v := float64(r % 1999)
			h.Add(v)
			s.Add(v)
		}
		q := float64(qRaw%101) / 100
		got := h.Quantile(q)
		// Nearest-rank order statistic: smallest value with cumulative
		// count >= q*n (q=0 maps to the minimum).
		rank := int(math.Ceil(q * float64(s.N())))
		if rank < 1 {
			rank = 1
		}
		want := s.Values()[rank-1]
		return math.Abs(got-want) <= 10+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedMedians(t *testing.T) {
	w := NewWindowedMedians(10)
	// window [0,10): values 1,3 -> median 2; window [10,20): 5 -> 5;
	// window [20,30) empty; window [30,40): 7,9,11 -> 9.
	w.Add(1, 1)
	w.Add(2, 3)
	w.Add(11, 5)
	w.Add(31, 7)
	w.Add(32, 9)
	w.Add(33, 11)
	w.Flush()
	if len(w.Medians) != 3 {
		t.Fatalf("got %d medians, want 3 (empty windows skipped): %v", len(w.Medians), w.Medians)
	}
	want := []float64{2, 5, 9}
	starts := []float64{0, 10, 30}
	for i := range want {
		if w.Medians[i] != want[i] {
			t.Errorf("median[%d] = %v, want %v", i, w.Medians[i], want[i])
		}
		if w.Starts[i] != starts[i] {
			t.Errorf("start[%d] = %v, want %v", i, w.Starts[i], starts[i])
		}
	}
}

func TestWindowedMediansPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewWindowedMedians(0)
}

func TestWindowedMediansDoubleFlush(t *testing.T) {
	w := NewWindowedMedians(10)
	w.Add(1, 42)
	w.Flush()
	w.Flush() // second flush of empty window must not add a median
	if len(w.Medians) != 1 || w.Medians[0] != 42 {
		t.Fatalf("Medians = %v, want [42]", w.Medians)
	}
}

// Regression: FracAbove on a negative threshold used to index
// h.buckets[int(x/width)+1] with a negative index and panic (x = -5,
// width = 1 gave idx = -4). A negative threshold is below everything the
// histogram can hold, so the answer is exactly 1.
func TestHistogramFracAboveNegative(t *testing.T) {
	h := NewHistogram(1, 8)
	h.Add(0.5)
	h.Add(3)
	h.Add(100) // overflow bucket
	if got := h.FracAbove(-5); got != 1 {
		t.Fatalf("FracAbove(-5) = %v, want 1", got)
	}
	if got := h.FracAbove(-0.25); got != 1 {
		t.Fatalf("FracAbove(-0.25) = %v, want 1", got)
	}
	// Sanity: non-negative thresholds unchanged by the clamp.
	if got := h.FracAbove(0); got != 2.0/3 {
		t.Fatalf("FracAbove(0) = %v, want 2/3", got)
	}
}

// Regression: a long idle gap (or a first observation at large t) used to
// advance the window start one window per iteration — O(gap/window). The
// arithmetic jump must give the same medians and window starts, fast.
func TestWindowedMediansLongGapJumpsArithmetically(t *testing.T) {
	w := NewWindowedMedians(1)
	w.Add(0.5, 2)
	// Pre-fix this looped ~1e15 times; post-fix it is O(1). The deadline
	// on `go test` makes a regression fail by timeout.
	const far = 1e15
	w.Add(far+0.25, 7)
	w.Flush()
	if len(w.Medians) != 2 {
		t.Fatalf("got %d medians, want 2: %v", len(w.Medians), w.Medians)
	}
	if w.Medians[0] != 2 || w.Starts[0] != 0 {
		t.Fatalf("first window = (%v @ %v), want (2 @ 0)", w.Medians[0], w.Starts[0])
	}
	if w.Medians[1] != 7 || w.Starts[1] != far {
		t.Fatalf("gap window = (%v @ %v), want (7 @ %v)", w.Medians[1], w.Starts[1], float64(far))
	}
	// The jump must land on the window containing t, never past it.
	w.Add(far+0.5, 9)
	w.Flush()
	if len(w.Medians) != 3 || w.Medians[2] != 9 {
		t.Fatalf("post-jump window broken: medians %v starts %v", w.Medians, w.Starts)
	}
}
