package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.StdDev() != 0 ||
		s.Min() != 0 || s.Max() != 0 || s.FracAbove(5) != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleBasicMoments(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.StdDev(); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestMedianOddEven(t *testing.T) {
	var odd Sample
	odd.AddAll([]float64{5, 1, 3})
	if odd.Median() != 3 {
		t.Errorf("odd median = %v, want 3", odd.Median())
	}
	var even Sample
	even.AddAll([]float64{1, 3, 5, 7})
	if even.Median() != 4 {
		t.Errorf("even median = %v, want 4", even.Median())
	}
}

func TestPercentileEdges(t *testing.T) {
	var s Sample
	s.AddAll([]float64{10, 20, 30, 40, 50})
	if s.Percentile(0) != 10 || s.Percentile(100) != 50 {
		t.Errorf("extreme percentiles wrong: %v / %v", s.Percentile(0), s.Percentile(100))
	}
	if got := s.Percentile(25); got != 20 {
		t.Errorf("P25 = %v, want 20", got)
	}
	if got := s.Percentile(-1); got != 10 {
		t.Errorf("P(-1) = %v, want clamp to min", got)
	}
	if got := s.Percentile(101); got != 50 {
		t.Errorf("P(101) = %v, want clamp to max", got)
	}
}

func TestFracAbove(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := s.FracAbove(7); got != 0.3 {
		t.Errorf("FracAbove(7) = %v, want 0.3", got)
	}
	if got := s.FracAbove(10); got != 0 {
		t.Errorf("FracAbove(10) = %v, want 0 (strictly greater)", got)
	}
	if got := s.FracAbove(0); got != 1 {
		t.Errorf("FracAbove(0) = %v, want 1", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	var s Sample
	s.AddAll([]float64{5, 10, 10, 20, 100})
	pts := s.CDF([]float64{0, 5, 10, 20, 50, 100})
	if pts[0].Frac != 0 {
		t.Errorf("CDF(0) = %v, want 0", pts[0].Frac)
	}
	if pts[2].Frac != 0.6 {
		t.Errorf("CDF(10) = %v, want 0.6", pts[2].Frac)
	}
	if pts[len(pts)-1].Frac != 1 {
		t.Errorf("CDF(max) = %v, want 1", pts[len(pts)-1].Frac)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Frac < pts[i-1].Frac {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	s.AddAll([]float64{10, 20, 120, 160})
	sm := s.Summarize(100, 150)
	if sm.N != 4 || sm.Max != 160 {
		t.Errorf("N/Max = %d/%v", sm.N, sm.Max)
	}
	if sm.Above1 != 0.5 || sm.Above2 != 0.25 {
		t.Errorf("tails = %v/%v, want 0.5/0.25", sm.Above1, sm.Above2)
	}
	if sm.String() == "" {
		t.Error("String() empty")
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		lo, hi := float64(pa%101), float64(pb%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := s.Percentile(lo), s.Percentile(hi)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Values() returns a sorted permutation of the inputs.
func TestPropertyValuesSorted(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		clean := raw[:0:0]
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			clean = append(clean, v)
			s.Add(v)
		}
		got := s.Values()
		if len(got) != len(clean) {
			return false
		}
		if !sort.Float64sAreSorted(got) {
			return false
		}
		want := append([]float64(nil), clean...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMatchesSample(t *testing.T) {
	var s Sample
	var o Online
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	for _, v := range vals {
		s.Add(v)
		o.Add(v)
	}
	if o.N() != int64(s.N()) {
		t.Fatalf("N mismatch")
	}
	if !approx(o.Mean(), s.Mean(), 1e-9) {
		t.Errorf("mean %v vs %v", o.Mean(), s.Mean())
	}
	if !approx(o.StdDev(), s.StdDev(), 1e-9) {
		t.Errorf("stddev %v vs %v", o.StdDev(), s.StdDev())
	}
	if o.Min() != 1 || o.Max() != 9 {
		t.Errorf("min/max %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineMerge(t *testing.T) {
	var whole, a, b Online
	for i := 0; i < 100; i++ {
		v := float64(i*i%37) + 0.5
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatal("merged N mismatch")
	}
	if !approx(a.Mean(), whole.Mean(), 1e-9) || !approx(a.StdDev(), whole.StdDev(), 1e-9) {
		t.Fatalf("merged moments diverge: %v/%v vs %v/%v", a.Mean(), a.StdDev(), whole.Mean(), whole.StdDev())
	}
	var empty Online
	a.Merge(&empty) // merging empty is a no-op
	if a.N() != whole.N() {
		t.Fatal("merge with empty changed N")
	}
	var fresh Online
	fresh.Merge(&whole)
	if fresh.N() != whole.N() || !approx(fresh.Mean(), whole.Mean(), 1e-12) {
		t.Fatal("merge into empty failed")
	}
}

// Property: Online merge equals sequential accumulation for any split.
func TestPropertyOnlineMerge(t *testing.T) {
	f := func(raw []float64, split uint8) bool {
		var vals []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return true
		}
		k := int(split) % (len(vals) + 1)
		var whole, left, right Online
		for i, v := range vals {
			whole.Add(v)
			if i < k {
				left.Add(v)
			} else {
				right.Add(v)
			}
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			approx(left.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			approx(left.Variance(), whole.Variance(), 1e-5*(1+whole.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
