package stats

import (
	"math"
	"sort"
	"testing"
)

// refQuantile is an independent reference for Histogram.Quantile: it keeps
// the raw samples, quantizes each to its bucket, and answers quantile
// queries from the sorted order statistics — target = q*n, the containing
// bucket is the one holding the target-th sample, and the answer
// interpolates linearly through that bucket's occupancy, exactly the
// model the histogram's cumulative scan implements by counting.
type refQuantile struct {
	width   float64
	nb      int
	samples []float64
}

func (r *refQuantile) add(v float64) { r.samples = append(r.samples, v) }

func (r *refQuantile) quantile(q float64) float64 {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	buckets := make([]int, n)
	for i, v := range r.samples {
		if v < 0 {
			v = 0
		}
		idx := int(v / r.width)
		if idx > r.nb { // overflow sentinel sorts last
			idx = r.nb
		}
		buckets[i] = idx
	}
	sort.Ints(buckets)
	target := q * float64(n)
	// The sample index holding the target: ceil(target)-1, floored at 0.
	k := int(math.Ceil(target)) - 1
	if k < 0 {
		k = 0
	}
	b := buckets[k]
	if b >= r.nb {
		return r.width * float64(r.nb) // overflowed mass reports the bound
	}
	below := sort.SearchInts(buckets, b)                 // samples in buckets < b
	count := sort.SearchInts(buckets, b+1) - below       // samples in bucket b
	within := (target - float64(below)) / float64(count) // fraction through b
	if within < 0 {
		within = 0
	}
	return (float64(b) + within) * r.width
}

// The interpolation contract, checked against the reference on samples at
// and around log-spaced bucket edges — the distribution shape the trigger
// -interval and delay histograms actually hold, where most mass piles
// into the low buckets and the tail is sparse (so an off-by-one in the
// cumulative scan shifts answers by whole buckets, not epsilons).
func TestQuantileMatchesReferenceOnLogSpacedEdges(t *testing.T) {
	const width, nbuckets = 2.0, 1024
	h := NewHistogram(width, nbuckets)
	ref := &refQuantile{width: width, nb: nbuckets}
	// Log-spaced edges e = width * 2^k, sampled exactly at the edge, just
	// below it, and just above it, with geometrically decaying repetition
	// (heavier mass at the small edges).
	for k := 0; k <= 9; k++ {
		edge := width * math.Pow(2, float64(k))
		reps := 1 << (9 - k)
		for r := 0; r < reps; r++ {
			for _, v := range []float64{edge, edge - width/3, edge + width/3} {
				h.Add(v)
				ref.add(v)
			}
		}
	}
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	// Quantiles exactly at cumulative bucket boundaries are the
	// interpolation's corner cases; probe them too.
	n := float64(h.N())
	var cum int64
	for i := 0; i < h.NumBuckets(); i++ {
		if c := h.Bucket(i); c > 0 {
			qs = append(qs, float64(cum)/n, float64(cum+c)/n)
			cum += c
		}
	}
	for _, q := range qs {
		got, want := h.Quantile(q), ref.quantile(q)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("Quantile(%v) = %v, reference says %v", q, got, want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(1, 10)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must answer 0")
	}
	h.Add(3.5)
	// One sample: every quantile lands in its bucket.
	for _, q := range []float64{0, 0.5, 1, -1, 2} {
		if got := h.Quantile(q); got < 3 || got > 4 {
			t.Fatalf("Quantile(%v) = %v, want within [3,4]", q, got)
		}
	}
	// Overflowed mass reports the histogram's upper bound.
	o := NewHistogram(1, 4)
	o.Add(100)
	if got := o.Quantile(1); got != 4 {
		t.Fatalf("overflow quantile %v, want the bound 4", got)
	}
}
