package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bucket histogram over [0, Width*len(buckets)),
// with an overflow bucket. It supports the quantile queries the experiments
// need (median of huge samples, tail fractions) in O(1) memory per bucket,
// which keeps two-million-sample workload measurements cheap.
type Histogram struct {
	width    float64
	buckets  []int64
	overflow int64
	n        int64
	sum      float64
}

// NewHistogram creates a histogram with nbuckets buckets of the given width.
func NewHistogram(width float64, nbuckets int) *Histogram {
	if width <= 0 || nbuckets <= 0 {
		panic("stats: histogram needs positive width and bucket count")
	}
	return &Histogram{width: width, buckets: make([]int64, nbuckets)}
}

// Add records an observation. Negative values clamp to the first bucket.
func (h *Histogram) Add(v float64) {
	h.n++
	h.sum += v
	if v < 0 {
		v = 0
	}
	idx := int(v / h.width)
	if idx >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Width returns the bucket width.
func (h *Histogram) Width() float64 { return h.width }

// NumBuckets returns the number of regular (non-overflow) buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Bucket returns the observation count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Overflow returns the count of observations beyond the last bucket.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Sum returns the exact running sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact running mean (not bucket-quantized).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) by linear
// interpolation within the containing bucket. Overflowed mass reports the
// histogram's upper bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	var cum int64
	for i, c := range h.buckets {
		if float64(cum+c) >= target && c > 0 {
			within := (target - float64(cum)) / float64(c)
			if within < 0 {
				within = 0
			}
			return (float64(i) + within) * h.width
		}
		cum += c
	}
	return h.width * float64(len(h.buckets))
}

// FracAbove returns the fraction of observations in buckets entirely above x
// (bucket-quantized; the bucket containing x counts as below).
func (h *Histogram) FracAbove(x float64) float64 {
	if h.n == 0 {
		return 0
	}
	idx := int(x/h.width) + 1
	if x < 0 {
		// Negative x truncates toward zero: x = -5, width 1 gives
		// idx = -4 (a panic below), and -0.25 gives idx = 1 (silently
		// skipping bucket 0). Every bucket is entirely above a negative
		// threshold, so start at 0.
		idx = 0
	}
	var above int64 = h.overflow
	for i := idx; i < len(h.buckets); i++ {
		above += h.buckets[i]
	}
	return float64(above) / float64(h.n)
}

// CDF evaluates the empirical CDF at each bucket boundary up to max.
func (h *Histogram) CDF(max float64) []CDFPoint {
	var out []CDFPoint
	var cum int64
	for i, c := range h.buckets {
		x := float64(i+1) * h.width
		if x > max {
			break
		}
		cum += c
		frac := 0.0
		if h.n > 0 {
			frac = float64(cum) / float64(h.n)
		}
		out = append(out, CDFPoint{X: x, Frac: frac})
	}
	return out
}

// ASCII renders a quick bar-chart view for CLI output and debugging.
func (h *Histogram) ASCII(maxBuckets int) string {
	var b strings.Builder
	var peak int64 = 1
	limit := len(h.buckets)
	if maxBuckets > 0 && maxBuckets < limit {
		limit = maxBuckets
	}
	for i := 0; i < limit; i++ {
		if h.buckets[i] > peak {
			peak = h.buckets[i]
		}
	}
	for i := 0; i < limit; i++ {
		bar := int(float64(h.buckets[i]) / float64(peak) * 50)
		fmt.Fprintf(&b, "%8.1f |%s %d\n", float64(i)*h.width, strings.Repeat("#", bar), h.buckets[i])
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow: %d\n", h.overflow)
	}
	return b.String()
}

// WindowedMedians computes the median of observations falling in successive
// fixed-length time windows, as in the paper's Figure 5 (trigger-interval
// medians over 1 ms and 10 ms windows). Observations are (time, value) pairs
// which must be fed in nondecreasing time order.
type WindowedMedians struct {
	window  float64
	start   float64
	current []float64
	Medians []float64 // one median per completed window; empty windows skip
	Starts  []float64 // window start times aligned with Medians
}

// NewWindowedMedians creates an accumulator with the given window length.
func NewWindowedMedians(window float64) *WindowedMedians {
	if window <= 0 {
		panic("stats: window must be positive")
	}
	return &WindowedMedians{window: window}
}

// Add records value v observed at time t. Time must not decrease.
func (w *WindowedMedians) Add(t, v float64) {
	if t >= w.start+w.window {
		// Close the open window, then jump straight to the window
		// containing t: the windows skipped over an idle gap are empty by
		// definition (flush skips empty windows), so stepping through them
		// one at a time would cost O(gap/window) for nothing.
		w.flush()
		w.start += w.window * math.Floor((t-w.start)/w.window)
		// Guard float rounding at the jump target's edges.
		for t >= w.start+w.window {
			w.start += w.window
		}
		for t < w.start {
			w.start -= w.window
		}
	}
	w.current = append(w.current, v)
}

// Flush closes the current window. Call once after the final observation.
func (w *WindowedMedians) Flush() { w.flush() }

func (w *WindowedMedians) flush() {
	if len(w.current) == 0 {
		return
	}
	sort.Float64s(w.current)
	n := len(w.current)
	var med float64
	if n%2 == 1 {
		med = w.current[n/2]
	} else {
		med = (w.current[n/2-1] + w.current[n/2]) / 2
	}
	w.Medians = append(w.Medians, med)
	w.Starts = append(w.Starts, w.start)
	w.current = w.current[:0]
}
