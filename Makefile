GO ?= go

.PHONY: all check vet build test race bench cover metrics-smoke trace-smoke series-smoke fuzz-smoke scenario-smoke shard-smoke queue-smoke emu-smoke stbench clean

# Per-target budget for the fuzz smoke (CI passes a longer one).
FUZZTIME ?= 30s

all: check

# The full gate: everything CI runs.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: metrics-smoke trace-smoke series-smoke queue-smoke emu-smoke
	$(GO) test -shuffle=on ./...

# The engine pool, the parallel experiment runner, and the sharded
# executor (plus the topology/httpserv rigs that run on it) are the
# concurrency-sensitive packages; run them under the race detector.
race:
	$(GO) test -race ./internal/sim ./internal/experiments ./internal/topology ./internal/httpserv ./internal/netstack ./internal/timerwheel ./internal/emu

# Engine, metrics and packet hot-path microbenchmarks (allocation counts
# included). The zero-alloc guards run first — the two-host packet path must
# stay at 0 allocs/op both bare (TestTestbedPacketZeroAlloc) and with the
# flowtrace hop sites wired but sampling off
# (TestTestbedPacketZeroAllocTracingOff) — so a pooling or tracing
# regression fails the target before any numbers are printed.
bench:
	$(GO) test -run 'TestTestbedPacketZeroAlloc' -count=1 ./internal/topology
	$(GO) test -run 'TestEngineZeroAlloc' -count=1 ./internal/sim
	$(GO) test -bench 'BenchmarkEngine|BenchmarkReschedule|BenchmarkQueueChurn|BenchmarkShardRound' -benchmem -run '^$$' ./internal/sim
	$(GO) test -bench 'BenchmarkMetrics' -benchmem -run '^$$' ./internal/metrics
	$(GO) test -bench 'BenchmarkTestbedPacket|BenchmarkSwitchForward' -benchmem -run '^$$' ./internal/topology
	$(GO) test -bench 'BenchmarkTCPSegment|BenchmarkTCPAck' -benchmem -run '^$$' ./internal/tcp
	$(GO) test -bench 'BenchmarkFleetSharded' -benchmem -run '^$$' ./internal/experiments

# Statement coverage across all packages, with a per-function summary.
cover:
	$(GO) test -coverprofile=/tmp/softtimers-cover.out -covermode=atomic ./...
	$(GO) tool cover -func=/tmp/softtimers-cover.out | tail -n 1

# End-to-end telemetry smoke: dump a real experiment's metrics snapshot and
# schema-check it.
metrics-smoke:
	$(GO) run ./cmd/stbench -exp fig2 -metrics /tmp/stbench-metrics-smoke.json >/dev/null
	$(GO) run ./cmd/metricscheck /tmp/stbench-metrics-smoke.json

# End-to-end trace smoke: export a Chrome trace and verify it parses as the
# trace-event format (the golden test covers the exact bytes; this covers
# the full workload -> tracer -> exporter pipeline), then export the traced
# fleet's multi-host trace with flow arrows and verify the flow events pair
# up (ph "s"/"f" exactly once per binding id, finish after start).
trace-smoke:
	$(GO) run ./cmd/sttrace -workload ST-nfs -mode chrome -n 20000 > /tmp/sttrace-smoke.trace.json
	$(GO) run ./cmd/tracecheck /tmp/sttrace-smoke.trace.json
	$(GO) run ./cmd/sttrace -mode flows-chrome -clients 4 > /tmp/sttrace-flows-smoke.trace.json
	$(GO) run ./cmd/tracecheck /tmp/sttrace-flows-smoke.trace.json

# Virtual-time series smoke: dump the fleet-trace experiment's series and
# schema-check them (monotone grid timestamps, capacity, alignment), then
# re-dump fully parallel — the files must be byte-identical (downsampling
# determinism at -parallel 1 vs 8).
series-smoke:
	$(GO) run ./cmd/stbench -exp fleet-trace -scale smoke -parallel 1 -series /tmp/stbench-series1.json >/dev/null
	$(GO) run ./cmd/metricscheck -series /tmp/stbench-series1.json
	$(GO) run ./cmd/stbench -exp fleet-trace -scale smoke -parallel 8 -series /tmp/stbench-series8.json >/dev/null
	diff /tmp/stbench-series1.json /tmp/stbench-series8.json

# Native-fuzz smoke: run each fuzz target for FUZZTIME beyond its checked-in
# corpus. Corpus-only regression replay happens in plain `make test`.
fuzz-smoke:
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzKindRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzChromeWriter$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim -run '^$$' -fuzz '^FuzzEventQueueOps$$' -fuzztime $(FUZZTIME)

# Degradation smoke: the fault-injection summary under the nastiest named
# scenario, exercising the -scenario path end to end.
scenario-smoke:
	$(GO) run ./cmd/stbench -scenario hostile >/dev/null

# Sharded-execution smoke: the fleet-scale and hierarchical (leaf-spine)
# fleet sweeps on 1 vs 4/8 conservative-sync engines must dump
# byte-identical telemetry (the sharding determinism contract, end to end
# through stbench), with lookahead mining on or off and under static or
# traffic-profiled placement. The sync.* grant telemetry varies with those
# knobs by design, but must itself be deterministic across -parallel.
shard-smoke:
	$(GO) run ./cmd/stbench -exp fleet-scale -scale smoke -shards 1 -metrics /tmp/stbench-shard1.json >/dev/null
	$(GO) run ./cmd/stbench -exp fleet-scale -scale smoke -shards 4 -metrics /tmp/stbench-shard4.json >/dev/null
	diff /tmp/stbench-shard1.json /tmp/stbench-shard4.json
	$(GO) run ./cmd/stbench -exp fleet-scale -scale smoke -shards 8 -metrics /tmp/stbench-shard8.json >/dev/null
	diff /tmp/stbench-shard1.json /tmp/stbench-shard8.json
	$(GO) run ./cmd/stbench -exp fleet-scale -scale smoke -shards 4 -mining=false -metrics /tmp/stbench-shard4nm.json >/dev/null
	diff /tmp/stbench-shard1.json /tmp/stbench-shard4nm.json
	$(GO) run ./cmd/stbench -exp fleet-scale -scale smoke -shards 4 -placement auto -metrics /tmp/stbench-shard4ap.json >/dev/null
	diff /tmp/stbench-shard1.json /tmp/stbench-shard4ap.json
	$(GO) run ./cmd/stbench -exp fleet-scale -scale smoke -shards 8 -placement auto -mining=false -metrics /tmp/stbench-shard8apnm.json >/dev/null
	diff /tmp/stbench-shard1.json /tmp/stbench-shard8apnm.json
	$(GO) run ./cmd/stbench -exp fleet-scale -scale smoke -shards 4 -parallel 1 -sync /tmp/stbench-sync-p1.json >/dev/null
	$(GO) run ./cmd/stbench -exp fleet-scale -scale smoke -shards 4 -parallel 8 -sync /tmp/stbench-sync-p8.json >/dev/null
	diff /tmp/stbench-sync-p1.json /tmp/stbench-sync-p8.json
	$(GO) run ./cmd/stbench -exp fleet-hier -scale smoke -shards 1 -metrics /tmp/stbench-hier1.json >/dev/null
	$(GO) run ./cmd/stbench -exp fleet-hier -scale smoke -shards 4 -metrics /tmp/stbench-hier4.json >/dev/null
	diff /tmp/stbench-hier1.json /tmp/stbench-hier4.json
	$(GO) run ./cmd/stbench -exp fleet-trace -scale smoke -shards 1 -metrics /tmp/stbench-trace1.json -series /tmp/stbench-tseries1.json >/dev/null
	$(GO) run ./cmd/stbench -exp fleet-trace -scale smoke -shards 4 -metrics /tmp/stbench-trace4.json -series /tmp/stbench-tseries4.json >/dev/null
	diff /tmp/stbench-trace1.json /tmp/stbench-trace4.json
	diff /tmp/stbench-tseries1.json /tmp/stbench-tseries4.json

# Queue-backend smoke: the churn-heavy hierarchical fleet must dump
# byte-identical telemetry on every engine event-queue backend (the
# differential contract, end to end through stbench -queue; the heap run
# is the reference).
queue-smoke:
	$(GO) run ./cmd/stbench -exp fleet-hier -scale smoke -queue heap -metrics /tmp/stbench-queue-heap.json >/dev/null
	$(GO) run ./cmd/stbench -exp fleet-hier -scale smoke -queue wheel -metrics /tmp/stbench-queue-wheel.json >/dev/null
	diff /tmp/stbench-queue-heap.json /tmp/stbench-queue-wheel.json
	$(GO) run ./cmd/stbench -exp fleet-hier -scale smoke -queue hier -metrics /tmp/stbench-queue-hier.json >/dev/null
	diff /tmp/stbench-queue-heap.json /tmp/stbench-queue-hier.json
	$(GO) run ./cmd/stbench -exp fleet-hier -scale smoke -queue ffs -metrics /tmp/stbench-queue-ffs.json >/dev/null
	diff /tmp/stbench-queue-heap.json /tmp/stbench-queue-ffs.json

# Emulation smoke: stserve's self-test serves real HTTP over loopback for
# ~2 s under the RealTimeClock driver and asserts at least one pacer-clocked
# response plus a non-empty engine-lag histogram. Prints SKIP (and exits 0)
# on runners where loopback sockets are unavailable.
emu-smoke:
	$(GO) run ./cmd/stserve -selftest

stbench:
	$(GO) build -o stbench ./cmd/stbench

clean:
	rm -f stbench
