GO ?= go

.PHONY: all check vet build test race bench stbench clean

all: check

# The full gate: everything CI runs.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine pool and the parallel experiment runner are the
# concurrency-sensitive packages; run them under the race detector.
race:
	$(GO) test -race ./internal/sim ./internal/experiments

# Engine hot-path microbenchmarks (allocation counts included).
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchmem -run '^$$' ./internal/sim

stbench:
	$(GO) build -o stbench ./cmd/stbench

clean:
	rm -f stbench
