// Command stbench runs the paper-reproduction experiments and prints each
// figure/table in the layout of the paper, annotated with the published
// values for comparison.
//
// Usage:
//
//	stbench -exp table1            # one experiment at quick scale
//	stbench -exp all -scale full   # the whole evaluation at paper scale
//	stbench -exp all -parallel 8   # fan independent experiments/rows
//	                               # across 8 workers (output unchanged)
//	stbench -exp all -json out.json  # machine-readable perf record
//	stbench -exp fig2 -metrics m.json  # full telemetry snapshot dump
//	stbench -exp fig2 -cpuprofile cpu.pprof -memprofile mem.pprof
//	stbench -scenario hostile      # degradation summary under a named
//	                               # fault-injection scenario
//	stbench -exp fleet-scale -shards 4  # fleet rows on 4 conservative-sync
//	                                    # engines (tables/telemetry unchanged)
//	stbench -exp fleet-hier -queue ffs  # fleet rows on an alternate engine
//	                                    # event-queue backend (output unchanged)
//	stbench -exp fleet-trace -series s.json  # virtual-time series dump
//	stbench -exp fleet-hier -progress  # periodic progress lines on stderr
//	stbench -exp fleet-scale -shards 8 -mining=false  # static grants only
//	                                                  # (output unchanged)
//	stbench -exp fleet-scale -shards 8 -placement auto  # traffic-profiled
//	                                                    # host placement
//	stbench -exp fleet-sync -sync sync.json  # grant-utilization telemetry
//
// Experiments: fig2, fig3 (alias of fig2), sec52, table1 (incl. figure 4),
// fig5, table2, fig6, table3, table4, table5, table6, table7, table8,
// delaydist (§3's d distribution), sec510 (useful-range analysis),
// ablation-wheel, ablation-idle, ablation-pollution, degradation-starve,
// degradation-loss, all.
//
// An experiment that panics is reported on stderr and the process exits
// non-zero, after the remaining experiments have completed and printed.
//
// Every experiment builds its own simulation engine per measurement, so
// -parallel N fans them (and the sweep rows inside them) across N
// goroutines; results are reassembled in deterministic order and the
// printed tables are byte-identical at any -parallel setting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"softtimers/internal/experiments"
	"softtimers/internal/faults"
	"softtimers/internal/metrics"
	"softtimers/internal/sim"
)

// jsonRecord is the -json output: one BENCH_results.json-style record
// tracking the perf trajectory of the reproduction across PRs.
type jsonRecord struct {
	Scale       string           `json:"scale"`
	Parallel    int              `json:"parallel"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	TotalWallMS float64          `json:"total_wall_ms"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	Name    string             `json:"name"`
	WallMS  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig2, sec52, table1, fig5, table2, fig6, table3..table8, all)")
	scale := flag.String("scale", "quick", "experiment scale: quick or full (paper-size)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker count for independent experiments and sweep rows (1 = fully serial)")
	shards := flag.Int("shards", 0,
		"engines per fleet-scale row under conservative-sync sharding (0 = legacy single engine; output unchanged)")
	mining := flag.Bool("mining", true,
		"mine round grants from each shard's earliest pending event instead of its clock (sharded fleet rows only; output unchanged)")
	placement := flag.String("placement", experiments.PlacementStatic,
		"fleet host-to-shard placement: static (server-on-0 round-robin) or auto (traffic-profiled; output unchanged)")
	queue := flag.String("queue", "heap",
		"engine event-queue backend for fleet experiments: heap, wheel, hier or ffs (output unchanged)")
	clock := flag.String("clock", "sim",
		"engine clock driver: sim (deterministic, the default) or realtime (emulation experiments only)")
	jsonPath := flag.String("json", "", "also write a machine-readable results record to this file")
	metricsPath := flag.String("metrics", "",
		"write each experiment's full telemetry snapshot (JSON, deterministic at any -parallel) to this file")
	seriesPath := flag.String("series", "",
		"write each experiment's virtual-time series snapshots (JSON, deterministic at any -parallel/-shards) to this file")
	syncPath := flag.String("sync", "",
		"write each sharded experiment's grant-utilization telemetry (sync.* instruments; deterministic at any -parallel for a fixed shard config) to this file")
	progress := flag.Bool("progress", false,
		"print a single-line progress report to stderr as long sweeps advance")
	scenario := flag.String("scenario", "",
		"run the degradation summary under this named fault scenario instead of -exp ("+
			strings.Join(faults.ScenarioNames(), ", ")+")")
	list := flag.Bool("list", false,
		"list registered experiments and fault scenarios with descriptions, then exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
	flag.Parse()

	if *list {
		fmt.Println("experiments (stbench -exp <name>):")
		for _, e := range experiments.List() {
			fmt.Printf("  %-20s %s\n", e[0], e[1])
		}
		fmt.Println("\nfault scenarios (stbench -scenario <name>):")
		for _, name := range faults.ScenarioNames() {
			fmt.Printf("  %-20s %s\n", name, faults.DescribeScenario(name))
		}
		fmt.Println("\nclock drivers (stbench -clock <name>):")
		for _, k := range sim.ClockKinds() {
			fmt.Printf("  %-20s %s\n", k.String(), k.Description())
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "stbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	case "smoke":
		sc = experiments.SmokeScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick, full or smoke)\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed
	sc.Workers = *parallel
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "invalid -shards %d\n", *shards)
		os.Exit(2)
	}
	sc.Shards = *shards
	sc.NoMining = !*mining
	switch *placement {
	case experiments.PlacementStatic, experiments.PlacementAuto:
		sc.Placement = *placement
	default:
		fmt.Fprintf(os.Stderr, "unknown -placement %q (want %s or %s)\n",
			*placement, experiments.PlacementStatic, experiments.PlacementAuto)
		os.Exit(2)
	}
	qk, err := sim.ParseQueueKind(*queue)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stbench: %v\n", err)
		os.Exit(2)
	}
	sc.Queue = qk
	ck, err := sim.ParseClockKind(*clock)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stbench: %v\n", err)
		os.Exit(2)
	}
	sc.Clock = ck
	if *progress {
		sc.Progress = progressPrinter(*jsonPath != "")
	}

	var names []string
	if *scenario != "" {
		if _, ok := faults.LookupScenario(*scenario); !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q; known: %s\n",
				*scenario, strings.Join(faults.ScenarioNames(), ", "))
			os.Exit(2)
		}
	} else {
		name := strings.ToLower(*exp)
		if name == "fig3" || name == "fig4" {
			// Figure 3 is derived from Figure 2's data; Figure 4 from Table 1's.
			alias := map[string]string{"fig3": "fig2", "fig4": "table1"}
			name = alias[name]
		}
		if name == "all" {
			names = experiments.Order
		} else if _, ok := experiments.Lookup(name); ok {
			names = []string{name}
		} else {
			known := experiments.Names()
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s, all\n", *exp, strings.Join(known, ", "))
			os.Exit(2)
		}
	}

	// The clock driver and the experiment set must agree: deterministic
	// experiments are part of the reproducibility contract and refuse the
	// wall clock; emulation experiments measure real time and refuse the
	// virtual one.
	if *scenario != "" && ck != sim.ClockSim {
		fmt.Fprintf(os.Stderr, "stbench: -scenario runs are deterministic; they do not accept -clock %s\n", ck)
		os.Exit(2)
	}
	for _, name := range names {
		switch {
		case experiments.RequiresRealTime(name) && ck != sim.ClockRealTime:
			fmt.Fprintf(os.Stderr, "stbench: experiment %q measures against the wall clock; run it with -clock realtime\n", name)
			os.Exit(2)
		case !experiments.RequiresRealTime(name) && ck != sim.ClockSim:
			fmt.Fprintf(os.Stderr, "stbench: experiment %q is deterministic; -clock %s would make its results irreproducible (only emulation experiments accept it)\n", name, ck)
			os.Exit(2)
		}
	}

	start := time.Now()
	var results []experiments.Result
	if *scenario != "" {
		results = []experiments.Result{{Name: "scenario-" + *scenario}}
		results[0].Table = experiments.RunScenario(sc, *scenario)
		results[0].Wall = time.Since(start)
	} else {
		results = experiments.RunParallel(sc, names, *parallel)
	}
	total := time.Since(start)

	failed := false
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "stbench: %v\n", r.Err)
			failed = true
			continue
		}
		fmt.Println(r.Table.Render())
		fmt.Printf("(%s completed in %v)\n\n", r.Name, r.Wall.Round(time.Millisecond))
	}
	fmt.Printf("total: %d experiment(s) in %v (parallel=%d)\n",
		len(results), total.Round(time.Millisecond), *parallel)

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, *scale, *parallel, total, results); err != nil {
			fmt.Fprintf(os.Stderr, "stbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "stbench: writing %s: %v\n", *metricsPath, err)
			os.Exit(1)
		}
	}
	if *seriesPath != "" {
		if err := writeSeries(*seriesPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "stbench: writing %s: %v\n", *seriesPath, err)
			os.Exit(1)
		}
	}
	if *syncPath != "" {
		if err := writeSync(*syncPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "stbench: writing %s: %v\n", *syncPath, err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "stbench: writing heap profile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if failed {
		os.Exit(1)
	}
}

// writeMetrics dumps each experiment's telemetry snapshot keyed by
// experiment name. Snapshots are per-simulation registries merged in row
// order and JSON map keys sort, so the file is byte-identical at any
// -parallel setting. Experiments without telemetry are omitted.
func writeMetrics(path string, results []experiments.Result) error {
	out := map[string]*metrics.Snapshot{}
	for _, r := range results {
		if r.Table != nil && r.Table.Telemetry != nil {
			out[r.Name] = r.Table.Telemetry
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// writeSeries dumps each experiment's virtual-time series snapshots keyed
// "experiment.rowkey.scope". Series are sampled on virtual-time cadences
// and JSON map keys sort, so the file is byte-identical at any -parallel
// or -shards setting. Experiments without series are omitted.
func writeSeries(path string, results []experiments.Result) error {
	out := map[string]*metrics.SeriesSnapshot{}
	for _, r := range results {
		if r.Table == nil {
			continue
		}
		for key, s := range r.Table.Series {
			out[r.Name+"."+key] = s
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// writeSync dumps each sharded experiment's grant-utilization telemetry
// (the sync.* instruments) keyed by experiment name. Kept apart from the
// -metrics dump on purpose: sync telemetry describes the execution
// substrate and varies with -shards/-mining/-placement by design, while
// the workload snapshot is byte-identical across them. For a fixed shard
// configuration it is deterministic at any -parallel. Experiments that
// ran unsharded are omitted.
func writeSync(path string, results []experiments.Result) error {
	out := map[string]*metrics.Snapshot{}
	for _, r := range results {
		if r.Table != nil && r.Table.Sync != nil {
			out[r.Name] = r.Table.Sync
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// progressPrinter builds the -progress callback: one line per report on
// stderr, serialized across workers. Virtual time and events fired are
// simulation facts — deterministic at any -parallel/-shards — while wall
// time is not, so it is suppressed when a -json record is being written
// (keeping every emitted value reproducible).
func progressPrinter(deterministic bool) func(label string, virtual sim.Time, fired uint64) {
	var mu sync.Mutex
	start := time.Now()
	return func(label string, virtual sim.Time, fired uint64) {
		mu.Lock()
		defer mu.Unlock()
		if deterministic {
			fmt.Fprintf(os.Stderr, "progress: %s virtual=%.1fms events=%d\n",
				label, virtual.Micros()/1000, fired)
			return
		}
		fmt.Fprintf(os.Stderr, "progress: %s virtual=%.1fms wall=%s events=%d\n",
			label, virtual.Micros()/1000, time.Since(start).Round(time.Millisecond), fired)
	}
}

func writeJSON(path, scale string, parallel int, total time.Duration, results []experiments.Result) error {
	rec := jsonRecord{
		Scale:       scale,
		Parallel:    parallel,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TotalWallMS: float64(total.Microseconds()) / 1000,
	}
	for _, r := range results {
		e := jsonExperiment{
			Name:   r.Name,
			WallMS: float64(r.Wall.Microseconds()) / 1000,
		}
		if r.Table != nil {
			e.Metrics = r.Table.Metrics
		}
		if r.Err != nil {
			e.Error = r.Err.Error()
		}
		rec.Experiments = append(rec.Experiments, e)
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
