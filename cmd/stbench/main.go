// Command stbench runs the paper-reproduction experiments and prints each
// figure/table in the layout of the paper, annotated with the published
// values for comparison.
//
// Usage:
//
//	stbench -exp table1            # one experiment at quick scale
//	stbench -exp all -scale full   # the whole evaluation at paper scale
//
// Experiments: fig2, fig3 (alias of fig2), sec52, table1 (incl. figure 4),
// fig5, table2, fig6, table3, table4, table5, table6, table7, table8,
// delaydist (§3's d distribution), sec510 (useful-range analysis),
// ablation-wheel, ablation-idle, ablation-pollution, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"softtimers/internal/experiments"
)

type runner func(sc experiments.Scale) *experiments.Table

var registry = map[string]runner{
	"fig2":   func(sc experiments.Scale) *experiments.Table { return experiments.RunFig2(sc).Table() },
	"sec52":  func(sc experiments.Scale) *experiments.Table { return experiments.RunSec52(sc).Table() },
	"table1": func(sc experiments.Scale) *experiments.Table { return experiments.RunTable1(sc).Table() },
	"fig5":   func(sc experiments.Scale) *experiments.Table { return experiments.RunFig5(sc).Table() },
	"table2": func(sc experiments.Scale) *experiments.Table { return experiments.RunTable2(sc).Table() },
	"fig6":   func(sc experiments.Scale) *experiments.Table { return experiments.RunFig6(sc).Table() },
	"table3": func(sc experiments.Scale) *experiments.Table { return experiments.RunTable3(sc).Table() },
	"table4": func(sc experiments.Scale) *experiments.Table { return experiments.RunPacing(sc, 40).Table() },
	"table5": func(sc experiments.Scale) *experiments.Table { return experiments.RunPacing(sc, 60).Table() },
	"table6": func(sc experiments.Scale) *experiments.Table { return experiments.RunWAN(sc, 50).Table() },
	"table7": func(sc experiments.Scale) *experiments.Table { return experiments.RunWAN(sc, 100).Table() },
	"table8": func(sc experiments.Scale) *experiments.Table { return experiments.RunTable8(sc).Table() },
	// Beyond the paper's figures: Section 5.10's useful-range analysis
	// and ablations of this reproduction's own design choices.
	"sec510":             func(sc experiments.Scale) *experiments.Table { return experiments.RunUsefulRange(sc).Table() },
	"delaydist":          func(sc experiments.Scale) *experiments.Table { return experiments.RunDelayDist(sc).Table() },
	"ablation-wheel":     func(sc experiments.Scale) *experiments.Table { return experiments.RunWheelAblation(sc).Table() },
	"ablation-idle":      func(sc experiments.Scale) *experiments.Table { return experiments.RunIdleAblation(sc).Table() },
	"ablation-pollution": func(sc experiments.Scale) *experiments.Table { return experiments.RunPollutionAblation(sc).Table() },
}

// order fixes the presentation sequence for -exp all.
var order = []string{"fig2", "sec52", "table1", "fig5", "table2", "fig6",
	"table3", "table4", "table5", "table6", "table7", "table8",
	"delaydist", "sec510", "ablation-wheel", "ablation-idle", "ablation-pollution"}

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig2, sec52, table1, fig5, table2, fig6, table3..table8, all)")
	scale := flag.String("scale", "quick", "experiment scale: quick or full (paper-size)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed

	name := strings.ToLower(*exp)
	if name == "fig3" || name == "fig4" {
		// Figure 3 is derived from Figure 2's data; Figure 4 from Table 1's.
		alias := map[string]string{"fig3": "fig2", "fig4": "table1"}
		name = alias[name]
	}
	var names []string
	if name == "all" {
		names = order
	} else if _, ok := registry[name]; ok {
		names = []string{name}
	} else {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s, all\n", *exp, strings.Join(known, ", "))
		os.Exit(2)
	}

	for _, n := range names {
		start := time.Now()
		table := registry[n](sc)
		fmt.Println(table.Render())
		fmt.Printf("(%s completed in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}
