// Command tracecheck validates a Chrome trace-event JSON file as produced
// by `sttrace -mode chrome` or trace.Buffer.WriteChrome: top-level shape,
// known phases, balanced begin/end slices per thread, and chronological
// timestamps. It is the checker behind `make trace-smoke`.
//
// Usage:
//
//	sttrace -workload ST-nfs -mode chrome > t.json && tracecheck t.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: not trace-event JSON: %v\n", err)
		os.Exit(1)
	}

	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if len(doc.TraceEvents) == 0 {
		report("no trace events")
	}
	if u := doc.DisplayTimeUnit; u != "" && u != "ms" && u != "ns" {
		report("displayTimeUnit %q (the format allows ms or ns)", u)
	}

	depth := map[int]int{} // per-tid open slice count
	lastTS := map[int]float64{}
	for i, e := range doc.TraceEvents {
		switch e.Phase {
		case "M":
			if name, _ := e.Args["name"].(string); name == "" {
				report("event %d: metadata record without a name arg", i)
			}
			continue // metadata is timeless
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				report("event %d: E without matching B on tid %d", i, e.TID)
			}
		case "i", "I", "X":
		default:
			report("event %d: unknown phase %q", i, e.Phase)
		}
		if e.TS < 0 {
			report("event %d: negative timestamp %v", i, e.TS)
		}
		if prev, seen := lastTS[e.TID]; seen && e.TS < prev {
			report("event %d: tid %d timestamp %v precedes %v", i, e.TID, e.TS, prev)
		}
		lastTS[e.TID] = e.TS
	}
	for tid, d := range depth {
		if d > 0 {
			report("tid %d: %d begin slice(s) never ended", tid, d)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "tracecheck: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s ok (%d events)\n", os.Args[1], len(doc.TraceEvents))
}
