// Command tracecheck validates a Chrome trace-event JSON file as produced
// by `sttrace -mode chrome` / `-mode flows-chrome` or the trace package's
// Chrome writers: top-level shape, known phases, balanced begin/end slices
// per thread track, chronological timestamps, and — for flow events
// (ph "s"/"f") — exactly-once start/finish pairing per binding id with the
// finish no earlier than the start. It is the checker behind
// `make trace-smoke`.
//
// Usage:
//
//	sttrace -workload ST-nfs -mode chrome > t.json && tracecheck t.json
//	sttrace -mode flows-chrome > f.json && tracecheck f.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id"`
	Cat   string         `json:"cat"`
	BP    string         `json:"bp"`
	Args  map[string]any `json:"args"`
}

// track identifies one thread row: slice nesting and timestamp order are
// per (pid, tid) — separate processes restart their clocks.
type track struct{ pid, tid int }

// flowState tracks one binding id's start/finish pairing.
type flowState struct {
	starts   int
	finishes int
	startTS  float64
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: not trace-event JSON: %v\n", err)
		os.Exit(1)
	}

	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if len(doc.TraceEvents) == 0 {
		report("no trace events")
	}
	if u := doc.DisplayTimeUnit; u != "" && u != "ms" && u != "ns" {
		report("displayTimeUnit %q (the format allows ms or ns)", u)
	}

	depth := map[track]int{} // per-track open slice count
	lastTS := map[track]float64{}
	flows := map[string]*flowState{} // binding id -> pairing state
	nFlow := 0
	for i, e := range doc.TraceEvents {
		tr := track{e.PID, e.TID}
		switch e.Phase {
		case "M":
			if name, _ := e.Args["name"].(string); name == "" {
				report("event %d: metadata record without a name arg", i)
			}
			continue // metadata is timeless
		case "B":
			depth[tr]++
		case "E":
			depth[tr]--
			if depth[tr] < 0 {
				report("event %d: E without matching B on pid %d tid %d", i, e.PID, e.TID)
			}
		case "s", "f":
			// Flow events bind by id across tracks; they are appended after
			// the slice tracks and restart the clock, so they get pairing
			// checks instead of per-track order checks.
			nFlow++
			if e.ID == "" {
				report("event %d: flow event without a binding id", i)
				continue
			}
			if e.TS < 0 {
				report("event %d: negative timestamp %v", i, e.TS)
			}
			fs := flows[e.ID]
			if fs == nil {
				fs = &flowState{}
				flows[e.ID] = fs
			}
			if e.Phase == "s" {
				fs.starts++
				fs.startTS = e.TS
			} else {
				fs.finishes++
				if e.BP != "" && e.BP != "e" {
					report("event %d: flow finish with binding point %q (want e or empty)", i, e.BP)
				}
				if fs.starts > 0 && e.TS < fs.startTS {
					report("event %d: flow %s finishes at %v before its start %v", i, e.ID, e.TS, fs.startTS)
				}
			}
			continue
		case "i", "I", "X":
		default:
			report("event %d: unknown phase %q", i, e.Phase)
		}
		if e.TS < 0 {
			report("event %d: negative timestamp %v", i, e.TS)
		}
		if prev, seen := lastTS[tr]; seen && e.TS < prev {
			report("event %d: pid %d tid %d timestamp %v precedes %v", i, e.PID, e.TID, e.TS, prev)
		}
		lastTS[tr] = e.TS
	}
	for tr, d := range depth {
		if d > 0 {
			report("pid %d tid %d: %d begin slice(s) never ended", tr.pid, tr.tid, d)
		}
	}
	for id, fs := range flows {
		if fs.starts != 1 || fs.finishes != 1 {
			report("flow %s: %d start(s) and %d finish(es) (want exactly one of each)",
				id, fs.starts, fs.finishes)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "tracecheck: %s\n", p)
		}
		os.Exit(1)
	}
	if nFlow > 0 {
		fmt.Printf("tracecheck: %s ok (%d events, %d flow pairs)\n", os.Args[1], len(doc.TraceEvents), len(flows))
		return
	}
	fmt.Printf("tracecheck: %s ok (%d events)\n", os.Args[1], len(doc.TraceEvents))
}
