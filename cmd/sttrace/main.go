// Command sttrace runs one of the paper's workloads on the simulated
// kernel and dumps trigger-state data: the interval CDF (Figure 4 style) as
// CSV, the per-source counts (Table 2 style) as CSV, a raw CSV trace of
// (time, interval, source) samples, or a full execution trace in Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto.
//
// Two network modes drive the traced hierarchical fleet instead of a
// single-kernel workload: "flows" dumps the sampled per-packet flow spans
// (per-hop virtual timestamps) as JSON, and "flows-chrome" the merged
// multi-host Chrome trace with flow arrows overlaid between host rows.
//
// Usage:
//
//	sttrace -workload ST-Apache -mode cdf      > apache_cdf.csv
//	sttrace -workload ST-nfs    -mode sources  > nfs_sources.csv
//	sttrace -workload ST-Flash  -mode trace -n 10000 > flash_trace.csv
//	sttrace -workload ST-Apache -mode chrome -n 20000 > apache.trace.json
//	sttrace -mode flows -clients 8 > flows.json
//	sttrace -mode flows-chrome -clients 8 > fleet.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"softtimers/internal/cpu"
	"softtimers/internal/experiments"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
	"softtimers/internal/trace"
	"softtimers/internal/workloads"
)

func main() {
	wl := flag.String("workload", "ST-Apache", "workload name (ST-Apache, ST-Apache-compute, ST-Flash, ST-real-audio, ST-nfs, ST-kernel-build)")
	mode := flag.String("mode", "cdf", "output: cdf, sources, trace, chrome, flows, or flows-chrome")
	n := flag.Int64("n", 500000, "number of trigger-interval samples (chrome: retained trace events)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	clients := flag.Int("clients", 8, "client-host count for the flows/flows-chrome fleet")
	xeon := flag.Bool("xeon", false, "use the 500 MHz Pentium III profile instead of the P-II 300")
	flag.Parse()

	// The fleet-driven modes need no workload rig; handle them first.
	switch *mode {
	case "flows", "flows-chrome":
		sc := experiments.QuickScale()
		sc.Seed = *seed
		spans, chrome := experiments.FleetTraceExport(sc, *clients, *mode == "flows-chrome")
		if *mode == "flows-chrome" {
			if _, err := os.Stdout.Write(chrome); err != nil {
				fmt.Fprintf(os.Stderr, "sttrace: %v\n", err)
				os.Exit(1)
			}
			return
		}
		buf, err := json.MarshalIndent(spans, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sttrace: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(buf, '\n'))
		return
	}

	def, err := workloads.ByName(*wl)
	if err != nil {
		names := make([]string, 0, 6)
		for _, d := range workloads.All() {
			names = append(names, d.Name)
		}
		fmt.Fprintf(os.Stderr, "%v (known: %s)\n", err, strings.Join(names, ", "))
		os.Exit(2)
	}
	prof := cpu.PentiumII300()
	if *xeon {
		prof = cpu.PentiumIII500()
	}
	rig := def.Make(*seed, prof)

	switch *mode {
	case "trace":
		fmt.Println("time_us,interval_us,source")
		count := int64(0)
		rig.K.Meter().Trace = func(now sim.Time, iv sim.Time, src kernel.Source) {
			if count < *n {
				fmt.Printf("%.3f,%.3f,%s\n", now.Micros(), iv.Micros(), src)
			}
			count++
		}
		rig.Collect(*n, sim.Second, 600*sim.Second)
	case "cdf":
		rig.Collect(*n, sim.Second, 600*sim.Second)
		fmt.Println("interval_us,cumulative_fraction")
		for _, p := range rig.K.Meter().Hist.CDF(200) {
			fmt.Printf("%.0f,%.6f\n", p.X, p.Frac)
		}
	case "sources":
		rig.Collect(*n, sim.Second, 600*sim.Second)
		fmt.Println("source,count,fraction")
		m := rig.K.Meter()
		var total int64
		for s := 0; s < kernel.NumSources; s++ {
			total += m.BySource[s]
		}
		for s := 0; s < kernel.NumSources; s++ {
			if m.BySource[s] == 0 {
				continue
			}
			fmt.Printf("%s,%d,%.6f\n", kernel.Source(s), m.BySource[s],
				float64(m.BySource[s])/float64(total))
		}
	case "chrome":
		// Record the kernel's execution trace (context switches, idle
		// periods, interrupts, trigger states) and export the retained
		// window — the ring keeps the last n events — as trace-event JSON.
		buf := trace.New(int(*n))
		rig.K.SetTracer(buf)
		rig.Collect(*n, sim.Second, 600*sim.Second)
		if err := buf.WriteChrome(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sttrace: %v\n", err)
			os.Exit(1)
		}
		if d := buf.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "sttrace: ring retained last %d events (%d earlier dropped; raise -n for more)\n",
				buf.Len(), d)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want cdf, sources, trace, chrome, flows, or flows-chrome)\n", *mode)
		os.Exit(2)
	}
}
