// Command stserve runs the real-time emulation mode (package emu): the
// simulated soft-timer web server bound to a real TCP listener, answering
// actual HTTP requests with responses paced by the soft-timer Pacer. It is
// the live counterpart of stbench's virtual-time experiments — run it,
// point curl at it, and the response bytes arrive at the pacer's cadence.
//
// Usage:
//
//	stserve                         # serve on 127.0.0.1:0 until SIGINT
//	stserve -addr :8080             # explicit listen address
//	stserve -duration 10s           # serve for a fixed wall-clock window
//	stserve -kind apache -file 8192 # server model and response size
//	stserve -pace 200us -burst 40us # pacer target and catch-up intervals
//	stserve -selftest               # 2s loopback self-check (CI smoke);
//	                                # prints SKIP and exits 0 on runners
//	                                # without loopback sockets
//
// On exit, stserve prints the run's measurement summary: completed
// responses, the measured trigger-interval distribution (median/p99, the
// paper's Table 1 quantities, here from real timestamps), and the clock
// driver's lag accounting.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"softtimers/internal/emu"
	"softtimers/internal/httpserv"
	"softtimers/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:0", "TCP listen address")
		seed     = flag.Uint64("seed", 1, "simulated host seed")
		kind     = flag.String("kind", "flash", "server model: flash or apache")
		file     = flag.Int("file", 6144, "response body size in bytes")
		pace     = flag.Duration("pace", 100*time.Microsecond, "pacer target packet interval")
		burst    = flag.Duration("burst", 20*time.Microsecond, "pacer catch-up interval")
		duration = flag.Duration("duration", 0, "serve for this long, then exit (0: until SIGINT)")
		selftest = flag.Bool("selftest", false, "run the 2s loopback self-check and exit")
	)
	flag.Parse()

	var k httpserv.Kind
	switch *kind {
	case "flash":
		k = httpserv.Flash
	case "apache":
		k = httpserv.Apache
	default:
		fmt.Fprintf(os.Stderr, "stserve: unknown -kind %q (want flash or apache)\n", *kind)
		os.Exit(2)
	}
	cfg := emu.Config{
		Addr:               *addr,
		Seed:               *seed,
		Kind:               k,
		FileBytes:          *file,
		PacerInterval:      sim.FromStd(*pace),
		PacerBurstInterval: sim.FromStd(*burst),
	}

	if *selftest {
		os.Exit(runSelftest(cfg))
	}

	s, err := emu.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("stserve: %s model serving %d-byte responses on http://%s (pace %v, burst %v)\n",
		k, *file, s.Addr(), *pace, *burst)

	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	if *duration > 0 {
		select {
		case <-time.After(*duration):
		case <-done:
		}
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		select {
		case <-sig:
		case <-done:
		}
	}
	s.Stop()
	report(s)
}

// report prints the run's measurement summary.
func report(s *emu.Server) {
	ti := s.TriggerIntervals()
	c := s.Clock()
	fmt.Printf("responses completed: %d\n", s.Completed())
	if ti.N() > 0 {
		fmt.Printf("trigger intervals (real): n=%d median=%.1fus p99=%.1fus\n",
			ti.N(), ti.Median(), ti.Percentile(99))
	} else {
		fmt.Printf("trigger intervals (real): none measured\n")
	}
	fmt.Printf("clock lag: samples=%d max=%v bursts=%d waits=%d injected=%d\n",
		c.LagHist.N(), c.MaxLag().Std(), c.Bursts(), c.Waits(), c.Injected())
}

// runSelftest is the CI smoke path: serve on loopback, fetch responses
// with a plain HTTP client for ~2s of wall time, and assert that at least
// one response was paced out and that the clock driver recorded lag
// accounting. Runners without loopback sockets print SKIP and exit 0.
func runSelftest(cfg emu.Config) int {
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err != nil {
		fmt.Printf("SKIP: no loopback sockets on this runner (%v)\n", err)
		return 0
	} else {
		ln.Close()
	}
	cfg.Addr = "127.0.0.1:0"
	s, err := emu.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stserve selftest: %v\n", err)
		return 1
	}
	go s.Serve()
	defer s.Stop()

	url := "http://" + s.Addr().String() + "/file"
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(2 * time.Second)
	fetched, bytes := 0, 0
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stserve selftest: GET: %v\n", err)
			return 1
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "stserve selftest: read: %v\n", err)
			return 1
		}
		fetched++
		bytes += len(b)
	}
	s.Stop()

	if s.Completed() < 1 {
		fmt.Fprintf(os.Stderr, "stserve selftest: no paced responses completed (fetched %d over HTTP)\n", fetched)
		return 1
	}
	if s.Clock().LagHist.N() == 0 {
		fmt.Fprintf(os.Stderr, "stserve selftest: clock lag histogram is empty\n")
		return 1
	}
	ti := s.TriggerIntervals()
	fmt.Printf("selftest OK: %d responses (%d HTTP fetches, %d bytes), trigger median=%.1fus p99=%.1fus, lag samples=%d max=%v\n",
		s.Completed(), fetched, bytes, ti.Median(), ti.Percentile(99),
		s.Clock().LagHist.N(), s.Clock().MaxLag().Std())
	return 0
}
