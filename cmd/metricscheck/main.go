// Command metricscheck validates a telemetry dump produced by
// `stbench -metrics <file>`: the top-level shape (experiment name →
// snapshot), instrument naming, and internal consistency of every
// snapshot. It is the schema checker behind `make metrics-smoke`.
//
// Usage:
//
//	stbench -exp fig2 -metrics m.json && metricscheck m.json
//
// Exit status 0 means the dump is well-formed; any violation is reported
// on stderr and exits 1.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"softtimers/internal/metrics"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck <metrics.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		os.Exit(1)
	}

	var dump map[string]*metrics.Snapshot
	if err := json.Unmarshal(data, &dump); err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: not a metrics dump: %v\n", err)
		os.Exit(1)
	}
	if len(dump) == 0 {
		fmt.Fprintln(os.Stderr, "metricscheck: dump contains no experiments")
		os.Exit(1)
	}

	var problems []string
	report := func(exp, format string, args ...any) {
		problems = append(problems, exp+": "+fmt.Sprintf(format, args...))
	}

	exps := make([]string, 0, len(dump))
	for name := range dump {
		exps = append(exps, name)
	}
	sort.Strings(exps)

	for _, exp := range exps {
		s := dump[exp]
		if s == nil {
			report(exp, "null snapshot")
			continue
		}
		if len(s.Counters) == 0 {
			report(exp, "snapshot has no counters")
		}
		for name, v := range s.Counters {
			checkName(report, exp, name)
			// Counters are monotonic counts or accumulated ns; both are
			// non-negative.
			if v < 0 {
				report(exp, "counter %s is negative: %d", name, v)
			}
		}
		for name, g := range s.Gauges {
			checkName(report, exp, name)
			if g.Max < g.Value {
				report(exp, "gauge %s: high-water mark %d below value %d", name, g.Max, g.Value)
			}
		}
		for name, h := range s.Histograms {
			checkName(report, exp, name)
			if h.Width <= 0 {
				report(exp, "histogram %s: non-positive bucket width %v", name, h.Width)
			}
			var inBuckets int64
			prev := -1
			for _, b := range h.Buckets {
				if b.Index <= prev {
					report(exp, "histogram %s: bucket indices not strictly ascending at %d", name, b.Index)
				}
				prev = b.Index
				if b.Index < 0 {
					report(exp, "histogram %s: negative bucket index %d", name, b.Index)
				}
				if b.Count <= 0 {
					report(exp, "histogram %s: bucket %d has non-positive count %d (empty buckets must be omitted)",
						name, b.Index, b.Count)
				}
				inBuckets += b.Count
			}
			if h.Overflow < 0 {
				report(exp, "histogram %s: negative overflow %d", name, h.Overflow)
			}
			if got := inBuckets + h.Overflow; got != h.Count {
				report(exp, "histogram %s: buckets(%d) + overflow(%d) = %d, but count = %d",
					name, inBuckets, h.Overflow, got, h.Count)
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "metricscheck: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s ok (%d experiment(s))\n", os.Args[1], len(dump))
}

// checkName enforces the instrument naming convention: dot-separated
// lower-case snake_case segments, e.g. "kernel.intr_ns.hardclock".
func checkName(report func(string, string, ...any), exp, name string) {
	if name == "" {
		report(exp, "empty instrument name")
		return
	}
	for _, seg := range strings.Split(name, ".") {
		if seg == "" {
			report(exp, "instrument %q has an empty name segment", name)
			return
		}
		for _, r := range seg {
			ok := r == '_' || r == '+' || r == '-' ||
				(r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
			if !ok {
				report(exp, "instrument %q: character %q outside [a-z0-9_+-.]", name, r)
				return
			}
		}
	}
}
