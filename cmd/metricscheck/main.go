// Command metricscheck validates a telemetry dump produced by
// `stbench -metrics <file>` — the top-level shape (experiment name →
// snapshot), instrument naming, and internal consistency of every
// snapshot — or, with -series, a virtual-time series dump produced by
// `stbench -series <file>`: monotone virtual timestamps on the sampling
// grid, ring-buffer capacity respected, and column/timestamp alignment.
// It is the schema checker behind `make metrics-smoke` and
// `make series-smoke`.
//
// Usage:
//
//	stbench -exp fig2 -metrics m.json && metricscheck m.json
//	stbench -exp fleet-trace -series s.json && metricscheck -series s.json
//
// Exit status 0 means the dump is well-formed; any violation is reported
// on stderr and exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"softtimers/internal/metrics"
)

func main() {
	series := flag.Bool("series", false, "validate a stbench -series dump instead of a -metrics one")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-series] <dump.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		os.Exit(1)
	}
	if *series {
		checkSeries(path, data)
		return
	}

	var dump map[string]*metrics.Snapshot
	if err := json.Unmarshal(data, &dump); err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: not a metrics dump: %v\n", err)
		os.Exit(1)
	}
	if len(dump) == 0 {
		fmt.Fprintln(os.Stderr, "metricscheck: dump contains no experiments")
		os.Exit(1)
	}

	var problems []string
	report := func(exp, format string, args ...any) {
		problems = append(problems, exp+": "+fmt.Sprintf(format, args...))
	}

	exps := make([]string, 0, len(dump))
	for name := range dump {
		exps = append(exps, name)
	}
	sort.Strings(exps)

	for _, exp := range exps {
		s := dump[exp]
		if s == nil {
			report(exp, "null snapshot")
			continue
		}
		if len(s.Counters) == 0 {
			report(exp, "snapshot has no counters")
		}
		for name, v := range s.Counters {
			checkName(report, exp, name)
			// Counters are monotonic counts or accumulated ns; both are
			// non-negative.
			if v < 0 {
				report(exp, "counter %s is negative: %d", name, v)
			}
		}
		for name, g := range s.Gauges {
			checkName(report, exp, name)
			if g.Max < g.Value {
				report(exp, "gauge %s: high-water mark %d below value %d", name, g.Max, g.Value)
			}
		}
		for name, h := range s.Histograms {
			checkName(report, exp, name)
			if h.Width <= 0 {
				report(exp, "histogram %s: non-positive bucket width %v", name, h.Width)
			}
			var inBuckets int64
			prev := -1
			for _, b := range h.Buckets {
				if b.Index <= prev {
					report(exp, "histogram %s: bucket indices not strictly ascending at %d", name, b.Index)
				}
				prev = b.Index
				if b.Index < 0 {
					report(exp, "histogram %s: negative bucket index %d", name, b.Index)
				}
				if b.Count <= 0 {
					report(exp, "histogram %s: bucket %d has non-positive count %d (empty buckets must be omitted)",
						name, b.Index, b.Count)
				}
				inBuckets += b.Count
			}
			if h.Overflow < 0 {
				report(exp, "histogram %s: negative overflow %d", name, h.Overflow)
			}
			if got := inBuckets + h.Overflow; got != h.Count {
				report(exp, "histogram %s: buckets(%d) + overflow(%d) = %d, but count = %d",
					name, inBuckets, h.Overflow, got, h.Count)
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "metricscheck: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s ok (%d experiment(s))\n", path, len(dump))
}

// checkSeries validates a stbench -series dump: name → SeriesSnapshot.
func checkSeries(path string, data []byte) {
	var dump map[string]*metrics.SeriesSnapshot
	if err := json.Unmarshal(data, &dump); err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: not a series dump: %v\n", err)
		os.Exit(1)
	}
	if len(dump) == 0 {
		fmt.Fprintln(os.Stderr, "metricscheck: series dump contains no snapshots")
		os.Exit(1)
	}

	var problems []string
	report := func(key, format string, args ...any) {
		problems = append(problems, key+": "+fmt.Sprintf(format, args...))
	}

	keys := make([]string, 0, len(dump))
	for k := range dump {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, key := range keys {
		s := dump[key]
		if s == nil {
			report(key, "null snapshot")
			continue
		}
		if s.IntervalNS <= 0 {
			report(key, "non-positive sampling interval %d ns", s.IntervalNS)
		}
		if s.Capacity < 2 || s.Capacity%2 != 0 {
			report(key, "capacity %d (want even and >= 2)", s.Capacity)
		}
		if s.Stride < 1 || s.Stride&(s.Stride-1) != 0 {
			report(key, "stride %d (want a power of two >= 1)", s.Stride)
		}
		if len(s.TimesNS) > s.Capacity {
			report(key, "%d retained points exceed ring capacity %d", len(s.TimesNS), s.Capacity)
		}
		// Retained points sit on the decimation grid: strictly ascending,
		// exactly stride*interval apart.
		step := s.Stride * s.IntervalNS
		for i := 1; i < len(s.TimesNS); i++ {
			if s.TimesNS[i] <= s.TimesNS[i-1] {
				report(key, "timestamp %d (%d ns) not after %d ns", i, s.TimesNS[i], s.TimesNS[i-1])
			} else if step > 0 && s.TimesNS[i]-s.TimesNS[i-1] != step {
				report(key, "timestamp %d: spacing %d ns off the stride grid (want %d)",
					i, s.TimesNS[i]-s.TimesNS[i-1], step)
			}
		}
		if len(s.Series) == 0 {
			report(key, "snapshot has no columns")
		}
		for name, col := range s.Series {
			switch col.Merge {
			case metrics.MergeSum, metrics.MergeMax, metrics.MergeMin:
			default:
				report(key, "column %q has unknown merge kind %q", name, col.Merge)
			}
			if len(col.Vals) != len(s.TimesNS) {
				report(key, "column %q has %d values for %d timestamps", name, len(col.Vals), len(s.TimesNS))
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "metricscheck: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s ok (%d series snapshot(s))\n", path, len(dump))
}

// checkName enforces the instrument naming convention: dot-separated
// lower-case snake_case segments, e.g. "kernel.intr_ns.hardclock".
func checkName(report func(string, string, ...any), exp, name string) {
	if name == "" {
		report(exp, "empty instrument name")
		return
	}
	for _, seg := range strings.Split(name, ".") {
		if seg == "" {
			report(exp, "instrument %q has an empty name segment", name)
			return
		}
		for _, r := range seg {
			ok := r == '_' || r == '+' || r == '-' ||
				(r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
			if !ok {
				report(exp, "instrument %q: character %q outside [a-z0-9_+-.]", name, r)
				return
			}
		}
	}
}
