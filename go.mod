module softtimers

go 1.22
