// Pacing: the paper's headline application. A web server sends a 100-packet
// response across a WAN with a 100 ms RTT and a 50 Mbps bottleneck — first
// with ordinary slow-starting TCP, then with rate-based clocking at the
// (known) bottleneck capacity, paced by timer events instead of returning
// ACKs. Rate-based clocking skips slow start entirely and cuts response
// time by ~89% (Table 6).
package main

import (
	"fmt"

	"softtimers/internal/netstack"
	"softtimers/internal/sim"
	"softtimers/internal/tcp"
)

const (
	bottleneck = 50_000_000 // 50 Mbps
	rtt        = 100 * sim.Millisecond
	packets    = 100
)

func main() {
	fmt.Printf("transfer: %d packets of 1448 B over a %d Mbps / %v-RTT WAN\n\n",
		packets, bottleneck/1_000_000, rtt)
	reg := run(false)
	paced := run(true)
	fmt.Printf("regular TCP (slow start):   response time %8.1f ms\n", reg.Millis())
	fmt.Printf("rate-based clocking:        response time %8.1f ms\n", paced.Millis())
	fmt.Printf("reduction:                  %.0f%%   (paper: 89%%)\n",
		(1-float64(paced)/float64(reg))*100)
}

// run performs one request/response exchange and returns the client's
// response time.
func run(paced bool) sim.Time {
	eng := sim.NewEngine(7)
	cfg := tcp.DefaultConfig()

	var snd *tcp.Sender
	var rcv *tcp.Receiver
	var done sim.Time

	serverIn := netstack.EndpointFunc(func(p *netstack.Packet) {
		switch p.Kind {
		case netstack.Request:
			snd.Start() // self-clocked mode: begin slow start
		case netstack.Ack:
			snd.HandleAck(p)
		}
	})
	clientIn := netstack.EndpointFunc(func(p *netstack.Packet) {
		if p.Kind == netstack.Data {
			rcv.HandleData(p)
		}
	})
	wan := netstack.NewWANEmulator(eng, 100_000_000, bottleneck, rtt, serverIn, clientIn)

	snd = tcp.NewSender(&tcp.EngineEnv{Eng: eng, Out: wan.AtoB}, cfg, 1, packets, paced)
	rcv = tcp.NewReceiver(&tcp.EngineEnv{Eng: eng, Out: wan.BtoA}, cfg, 1)
	rcv.Expected = packets
	rcv.OnComplete = func(now sim.Time) { done = now }

	if paced {
		// One packet per bottleneck transmission time (240 us at 50
		// Mbps) — the interval a soft-timer pacer would hold with
		// trigger states every few tens of microseconds.
		interval := sim.Time(int64(cfg.WireSize(cfg.MSS)) * 8 * int64(sim.Second) / bottleneck)
		var tick func()
		tick = func() {
			if _, more := snd.PacedSendOne(eng.Now()); more {
				eng.After(interval, tick)
			}
		}
		eng.After(interval, tick)
	}

	// The client's request starts the clock.
	wan.BtoA.Send(&netstack.Packet{Flow: 1, Kind: netstack.Request, Size: cfg.WireSize(300)})
	eng.RunUntil(60 * sim.Second)
	return done
}
