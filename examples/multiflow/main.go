// Multiflow: rate-clocking several connections at once, at different
// rates, from one soft-timer event stream — the capability a single
// hardware timer cannot provide (Section 5.7: "It is impossible ... to use
// a hardware timer to simultaneously clock multiple transmissions at
// different rates, unless one rate is a multiple of the other").
//
// Three flows pace at 40, 100 and 250 µs targets on a busy Apache server's
// trigger stream, all sharing one pending soft-timer event; flows that
// become due together transmit within one trigger state.
package main

import (
	"fmt"

	"softtimers/internal/core"
	"softtimers/internal/httpserv"
	"softtimers/internal/sim"
)

func main() {
	// The busy Apache server supplies the trigger states.
	tb := httpserv.NewTestbed(httpserv.TestbedConfig{
		Seed:   5,
		Server: httpserv.Config{Kind: httpserv.Apache},
	})
	tb.Start()
	tb.Eng.RunFor(sim.Second) // reach saturation

	m := core.NewMultiPacer(tb.F)
	type flow struct {
		id       int
		targetUS float64
		want     int64
		sent     int64
		start    sim.Time
		end      sim.Time
	}
	flows := []*flow{
		{id: 1, targetUS: 40, want: 5000},
		{id: 2, targetUS: 100, want: 2000},
		{id: 3, targetUS: 250, want: 800},
	}
	for _, fl := range flows {
		fl := fl
		fl.start = tb.Eng.Now()
		m.AddFlow(fl.id, sim.Micros(fl.targetUS), 12*sim.Microsecond,
			func(now sim.Time) (sim.Time, bool) {
				fl.sent++
				fl.end = now
				return sim.Microsecond, fl.sent < fl.want
			})
	}
	tb.Eng.RunFor(sim.Second)

	fmt.Println("three flows, one soft-timer event stream, one busy server:")
	fmt.Println()
	fmt.Printf("%4s %12s %8s %16s %18s\n", "flow", "target (us)", "sent", "achieved (us)", "vs target")
	for _, fl := range flows {
		achieved := (fl.end - fl.start).Micros() / float64(fl.sent-1)
		fmt.Printf("%4d %12.0f %8d %16.1f %17.2fx\n",
			fl.id, fl.targetUS, fl.sent, achieved, achieved/fl.targetUS)
	}
	st := tb.F.Stats()
	fmt.Printf("\nsoft events fired: %d for %d transmissions (flows share events)\n",
		st.Fired, flows[0].sent+flows[1].sent+flows[2].sent)
	fmt.Println("a hardware timer could clock only one of these rates at a time")
}
