// Quickstart: build a simulated kernel, install the soft-timer facility,
// and schedule microsecond-scale events — the paper's core API
// (measure_time / schedule_soft_event) in action.
//
// A busy process provides trigger states every ~40 µs via its syscalls;
// scheduled events fire at the first trigger state past their deadline, so
// each observed latency lands in the paper's bound T < actual < T + X + 1.
package main

import (
	"fmt"

	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

func main() {
	eng := sim.NewEngine(42)
	// One call builds the machine: kernel (default P-II/300 profile) with
	// the soft-timer facility installed as its trigger sink.
	h := host.New(eng, host.Config{Kernel: kernel.Options{IdleLoop: false}})
	k, f := h.K, h.F

	fmt.Printf("measure_resolution()         = %d Hz\n", f.MeasureResolution())
	fmt.Printf("interrupt_clock_resolution() = %d Hz\n", f.InterruptClockResolution())
	fmt.Printf("X (bound width)              = %d ticks\n\n", f.X())

	// A process that computes for 35us then makes a syscall, forever:
	// its syscall returns are the trigger states.
	k.Spawn("worker", func(p *kernel.Proc) {
		var loop func()
		loop = func() {
			p.Compute(35*sim.Microsecond, func() {
				p.Syscall("read", 4*sim.Microsecond, loop)
			})
		}
		loop()
	})
	k.Start()

	// Schedule events at a few latencies and watch when they fire.
	fmt.Println("  T(us)  scheduled(us)  fired(us)  latency(us)")
	for _, T := range []uint64{10, 50, 100, 250, 500} {
		T := T
		sched := eng.Now()
		f.ScheduleSoftEvent(T, func(now sim.Time) sim.Time {
			fmt.Printf("  %5d  %13.1f  %9.1f  %11.1f\n",
				T, sched.Micros(), now.Micros(), (now - sched).Micros())
			return 500 // handler consumed 0.5us of CPU
		})
	}
	eng.RunFor(5 * sim.Millisecond)

	st := f.Stats()
	fmt.Printf("\nchecks=%d scheduled=%d fired=%d\n", st.Checks, st.Scheduled, st.Fired)
	fmt.Printf("total check overhead: %v across %v of simulated time\n",
		st.CheckOverhead, eng.Now())
	fmt.Println("\nEvery latency exceeds T (the lower bound) and stays within one")
	fmt.Println("trigger interval of it — no hardware timer interrupts were used.")
}
