// Polling: soft-timer network polling versus interrupt-driven packet
// processing (Section 5.9). The same saturated Flash web server runs twice:
// once with a conventional per-packet-interrupt NIC, once with a NIC polled
// from soft-timer events targeting an aggregation quota — no interrupts,
// better locality, same µs-scale delivery latency.
package main

import (
	"fmt"

	"softtimers/internal/httpserv"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

func main() {
	type outcome struct {
		label       string
		throughput  float64
		interrupts  int64
		polls       int64
		pktsPerPoll float64
	}
	var results []outcome

	run := func(label string, mode nic.Mode, quota float64) {
		tb := httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed: 3,
			NIC:  nic.Config{Mode: mode, AggregationQuota: quota},
			Server: httpserv.Config{
				Kind:       httpserv.Flash,
				Persistent: true, // P-HTTP stresses the network path hardest
			},
			LinkBps:     400_000_000,
			Concurrency: 48,
		})
		res := tb.Run(sim.Second, 3*sim.Second)
		o := outcome{
			label:      label,
			throughput: res.Throughput,
			interrupts: tb.NIC.RxInterrupts + tb.NIC.TxComplInterrupts,
			polls:      tb.NIC.Polls,
		}
		if tb.NIC.Polls > 0 {
			o.pktsPerPoll = float64(tb.NIC.PolledPackets) / float64(tb.NIC.Polls)
		}
		results = append(results, o)
	}

	run("interrupts (conventional)", nic.Interrupt, 1)
	for _, q := range []float64{1, 5, 15} {
		run(fmt.Sprintf("soft-timer polling, quota %g", q), nic.SoftPoll, q)
	}

	base := results[0].throughput
	fmt.Println("Flash web server, persistent HTTP, 6KB responses, saturated:")
	fmt.Println()
	fmt.Printf("%-30s %10s %9s %12s %10s %9s\n",
		"mode", "req/s", "speedup", "interrupts", "polls", "pkts/poll")
	for _, o := range results {
		fmt.Printf("%-30s %10.0f %8.2fx %12d %10d %9.2f\n",
			o.label, o.throughput, o.throughput/base, o.interrupts, o.polls, o.pktsPerPoll)
	}
	fmt.Println()
	fmt.Println("Polling eliminates network interrupts; raising the aggregation quota")
	fmt.Println("amortizes per-poll costs and improves locality (paper: up to +25%).")
}
