// Benchmark harness: one testing.B benchmark per figure and table of the
// paper's evaluation. Each benchmark regenerates its experiment (at quick
// scale per iteration; run cmd/stbench -scale full for paper-size runs) and
// reports the experiment's headline quantities as custom benchmark metrics,
// so `go test -bench=. -benchmem` prints the reproduced numbers next to
// the timing.
package main

import (
	"testing"

	"softtimers/internal/experiments"
)

func quick() experiments.Scale { return experiments.QuickScale() }

// BenchmarkFig2HardwareTimerThroughput regenerates Figure 2: Apache
// throughput as an extra hardware timer's frequency rises to 100 kHz.
func BenchmarkFig2HardwareTimerThroughput(b *testing.B) {
	var base, at100 float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.FreqStepKHz = 50
		res := experiments.RunFig2(sc)
		base = res.Base
		at100 = res.Rows[len(res.Rows)-1].Throughput
	}
	b.ReportMetric(base, "base_conn/s")
	b.ReportMetric(at100, "conn/s@100kHz")
}

// BenchmarkFig3HardwareTimerOverhead regenerates Figure 3: the per-
// interrupt overhead implied by the throughput reduction (paper: ~4.45 µs).
func BenchmarkFig3HardwareTimerOverhead(b *testing.B) {
	var perIntr, ovhd float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.FreqStepKHz = 100
		res := experiments.RunFig2(sc)
		last := res.Rows[len(res.Rows)-1]
		perIntr, ovhd = last.PerIntrUS, last.Overhead
	}
	b.ReportMetric(perIntr, "us/interrupt")
	b.ReportMetric(ovhd*100, "overhead%@100kHz")
}

// BenchmarkSec52SoftTimerBaseOverhead regenerates Section 5.2's result: a
// maximal-rate null soft-timer event costs nothing observable.
func BenchmarkSec52SoftTimerBaseOverhead(b *testing.B) {
	var ovhd, fire float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunSec52(quick())
		ovhd, fire = res.Overhead, res.MeanFireUS
	}
	b.ReportMetric(ovhd*100, "overhead%")
	b.ReportMetric(fire, "fire_interval_us")
}

// BenchmarkTable1TriggerIntervals regenerates Table 1 / Figure 4: the
// trigger-interval distribution of all workloads. Reports ST-Apache's
// mean/median (paper: 31.52 / 18 µs).
func BenchmarkTable1TriggerIntervals(b *testing.B) {
	var mean, median float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.Samples = 100_000
		res := experiments.RunTable1(sc)
		mean, median = res.Rows[0].MeanUS, res.Rows[0].MedianUS
	}
	b.ReportMetric(mean, "apache_mean_us")
	b.ReportMetric(median, "apache_median_us")
}

// BenchmarkFig5WindowedMedians regenerates Figure 5: trigger-interval
// medians over 1 ms vs 10 ms windows for ST-Apache-compute.
func BenchmarkFig5WindowedMedians(b *testing.B) {
	var spread, above40 float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5(quick())
		spread = res.Max10 - res.Min10
		above40 = res.Frac1msAbove40
	}
	b.ReportMetric(spread, "10ms_median_spread_us")
	b.ReportMetric(above40*100, "1ms_medians_above40us%")
}

// BenchmarkTable2TriggerSources regenerates Table 2: the per-source
// breakdown of ST-Apache trigger states (paper: syscalls 47.7%).
func BenchmarkTable2TriggerSources(b *testing.B) {
	var sys, ipout float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.Samples = 100_000
		res := experiments.RunTable2(sc)
		for src, f := range res.Fraction {
			switch src.String() {
			case "syscalls":
				sys = f
			case "ip-output":
				ipout = f
			}
		}
	}
	b.ReportMetric(sys*100, "syscalls%")
	b.ReportMetric(ipout*100, "ip-output%")
}

// BenchmarkFig6SourceAblation regenerates Figure 6: the distribution with
// each trigger source removed. Reports the no-syscalls degradation.
func BenchmarkFig6SourceAblation(b *testing.B) {
	var all, noSys float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.Samples = 60_000
		res := experiments.RunFig6(sc)
		for _, s := range res.Series {
			switch s.Removed {
			case "All":
				all = s.MeanUS
			case "no syscalls":
				noSys = s.MeanUS
			}
		}
	}
	b.ReportMetric(all, "mean_us_all")
	b.ReportMetric(noSys, "mean_us_no_syscalls")
}

// BenchmarkTable3RateClockingOverhead regenerates Table 3: pacing via a
// 50 kHz hardware timer (paper: 28–36% overhead) vs soft timers (2–6%).
func BenchmarkTable3RateClockingOverhead(b *testing.B) {
	var hw, soft float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable3(quick())
		hw, soft = res.Rows[0].HWOverhead, res.Rows[0].SoftOverhead
	}
	b.ReportMetric(hw*100, "apache_hw_overhead%")
	b.ReportMetric(soft*100, "apache_soft_overhead%")
}

// BenchmarkTable4PacingTarget40 regenerates Table 4: achieved transmission
// intervals at a 40 µs target under the ST-Apache trigger stream.
func BenchmarkTable4PacingTarget40(b *testing.B) {
	var at12, at35 float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.PacerTrain = 5000
		res := experiments.RunPacing(sc, 40)
		at12 = res.Rows[0].SoftAvgUS
		at35 = res.Rows[len(res.Rows)-1].SoftAvgUS
	}
	b.ReportMetric(at12, "avg_us@min12")
	b.ReportMetric(at35, "avg_us@min35")
}

// BenchmarkTable5PacingTarget60 regenerates Table 5 (60 µs target).
func BenchmarkTable5PacingTarget60(b *testing.B) {
	var at12 float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.PacerTrain = 5000
		res := experiments.RunPacing(sc, 60)
		at12 = res.Rows[0].SoftAvgUS
	}
	b.ReportMetric(at12, "avg_us@min12")
}

// BenchmarkTable6WAN50Mbps regenerates Table 6: transfers over the 50 Mbps
// / 100 ms-RTT WAN, regular TCP vs rate-based clocking (paper: up to 89%
// response-time reduction at 100 packets).
func BenchmarkTable6WAN50Mbps(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.WANTransfers = []int64{100}
		res := experiments.RunWAN(sc, 50)
		reduction = res.Rows[0].RespReduction
	}
	b.ReportMetric(reduction*100, "resp_reduction%@100pkt")
}

// BenchmarkTable7WAN100Mbps regenerates Table 7 (100 Mbps bottleneck).
func BenchmarkTable7WAN100Mbps(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.WANTransfers = []int64{100}
		res := experiments.RunWAN(sc, 100)
		reduction = res.Rows[0].RespReduction
	}
	b.ReportMetric(reduction*100, "resp_reduction%@100pkt")
}

// BenchmarkSec510UsefulRange regenerates the Section 5.10 analysis: the
// soft-timer useful range widens with CPU speed.
func BenchmarkSec510UsefulRange(b *testing.B) {
	var piiRatio, xeonRatio float64
	for i := 0; i < b.N; i++ {
		sc := quick()
		sc.Samples = 80_000
		res := experiments.RunUsefulRange(sc)
		piiRatio = res.Rows[0].HWFloorUS / res.Rows[0].TriggerMeanUS
		xeonRatio = res.Rows[1].HWFloorUS / res.Rows[1].TriggerMeanUS
	}
	b.ReportMetric(piiRatio, "range_ratio_pii300")
	b.ReportMetric(xeonRatio, "range_ratio_piii500")
}

// BenchmarkAblationWheelStructures compares the hashed and hierarchical
// timing wheels backing the facility (a design-choice ablation).
func BenchmarkAblationWheelStructures(b *testing.B) {
	var hashed, hier float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunWheelAblation(quick())
		hashed, hier = res.Rows[0].Throughput, res.Rows[1].Throughput
	}
	b.ReportMetric(hashed, "hashed_conn/s")
	b.ReportMetric(hier, "hierarchical_conn/s")
}

// BenchmarkAblationIdlePolicy compares idle-loop policies: spin vs the
// paper's halt-when-quiet rule vs always halting.
func BenchmarkAblationIdlePolicy(b *testing.B) {
	var quietDelay, haltDelay float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunIdleAblation(quick())
		for _, row := range res.Rows {
			switch row.Policy {
			case "halt-when-quiet":
				quietDelay = row.MeanDelayUS
			case "halt-always":
				haltDelay = row.MeanDelayUS
			}
		}
	}
	b.ReportMetric(quietDelay, "halt_when_quiet_delay_us")
	b.ReportMetric(haltDelay, "halt_always_delay_us")
}

// BenchmarkAblationPollution isolates the cache-pollution model's share of
// hardware-timer overhead.
func BenchmarkAblationPollution(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunPollutionAblation(quick())
		with, without = res.HWOverheadWith, res.HWOverheadWithout
	}
	b.ReportMetric(with*100, "hw_overhead_polluted%")
	b.ReportMetric(without*100, "hw_overhead_unpolluted%")
}

// BenchmarkTable8NetworkPolling regenerates Table 8: soft-timer network
// polling vs interrupts (paper: 3–25% higher throughput).
func BenchmarkTable8NetworkPolling(b *testing.B) {
	var flashQ15 float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable8(quick())
		for _, row := range res.Rows {
			if row.Server == "Flash" && row.Protocol == "P-HTTP" {
				flashQ15 = row.SpeedupAt[15]
			}
		}
	}
	b.ReportMetric(flashQ15, "flash_phttp_speedup@q15")
}
